package spec

import (
	"reflect"
	"strings"
	"testing"

	"nochatter/internal/baseline"
	"nochatter/internal/gather"
	"nochatter/internal/gossip"
	"nochatter/internal/graph"
	"nochatter/internal/randomized"
	"nochatter/internal/sim"
	"nochatter/internal/ues"
	"nochatter/internal/unknown"
)

// roundTrip pushes a spec through its serialized form and back.
func roundTrip(t *testing.T, sp ScenarioSpec) ScenarioSpec {
	t.Helper()
	buf, err := sp.MarshalIndentJSON()
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	parsed, err := Parse(buf)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return parsed
}

// mustRun compiles and runs a spec.
func mustRun(t *testing.T, sp ScenarioSpec) *sim.RunResult {
	t.Helper()
	res, err := sp.Run()
	if err != nil {
		t.Fatalf("run %q: %v", sp.Name, err)
	}
	return res
}

// TestGraphFamilyRoundTrips proves that every registered graph family
// compiles from a GraphSpec to the same graph a hand-built generator call
// produces — via the port-preserving canonical code — and that the
// completeness guard below keeps this table in sync with the registry.
func TestGraphFamilyRoundTrips(t *testing.T) {
	cases := map[string]struct {
		gs   GraphSpec
		hand *graph.Graph
	}{
		"ring":      {GraphSpec{Family: "ring", N: 6}, graph.Ring(6)},
		"path":      {GraphSpec{Family: "path", N: 5}, graph.Path(5)},
		"complete":  {GraphSpec{Family: "complete", N: 4}, graph.Complete(4)},
		"star":      {GraphSpec{Family: "star", N: 5}, graph.Star(5)},
		"grid":      {GraphSpec{Family: "grid", N: 9}, graph.Grid(3, 3)},
		"torus":     {GraphSpec{Family: "torus", N: 12, Rows: 3}, graph.Torus(3, 4)},
		"hypercube": {GraphSpec{Family: "hypercube", N: 3}, graph.Hypercube(3)},
		"tree":      {GraphSpec{Family: "tree", N: 7, Seed: 2}, graph.RandomTree(7, 2)},
		"gnp":       {GraphSpec{Family: "gnp", N: 8, P: 0.3, Seed: 5}, graph.GNP(8, 0.3, 5)},
		"barbell":   {GraphSpec{Family: "barbell", N: 3, Tail: 2}, graph.Barbell(3, 2)},
		"lollipop":  {GraphSpec{Family: "lollipop", N: 3, Tail: 2}, graph.Lollipop(3, 2)},
		"two":       {GraphSpec{Family: "two"}, graph.TwoNodes()},
	}
	for _, family := range GraphFamilies() {
		if strings.HasPrefix(family, "test-") {
			continue // registered by other tests of this package
		}
		tc, ok := cases[family]
		if !ok {
			t.Errorf("registered graph family %q has no round-trip case; add one", family)
			continue
		}
		g, err := BuildGraph(tc.gs)
		if err != nil {
			t.Errorf("%s: %v", family, err)
			continue
		}
		if g.Name() != tc.hand.Name() || g.CanonicalCode() != tc.hand.CanonicalCode() {
			t.Errorf("%s: spec-built %s differs from hand-built %s", family, g.Name(), tc.hand.Name())
		}
	}
}

// TestSpecRunsBitIdenticalToHandBuilt is the round-trip property of the
// spec layer: for every registered algorithm, (hand-built scenario) and
// (spec → JSON → parse → compile) produce bit-identical RunResults. The
// baseline — centralized by construction, with no hand-built sim form —
// is covered by TestBaselineSpecMatchesCentralizedRun instead.
func TestSpecRunsBitIdenticalToHandBuilt(t *testing.T) {
	ring6 := graph.Ring(6)
	ring6Seq := ues.Build(ring6)
	ring4 := graph.Ring(4)
	ring4Seq := ues.Build(ring4)
	two := graph.TwoNodes()
	ring8 := graph.Ring(8)

	cases := map[string]struct {
		sp   ScenarioSpec
		hand sim.Scenario
	}{
		"known": {
			sp: ScenarioSpec{
				Graph: GraphSpec{Family: "ring", N: 6},
				Agents: []AgentSpec{
					{Label: 5, Start: 0, Algorithm: Known()},
					{Label: 9, Start: 3, Wake: sim.DormantUntilVisited, Algorithm: Known()},
				},
			},
			hand: sim.Scenario{Graph: ring6, Agents: []sim.AgentSpec{
				{Label: 5, Start: 0, WakeRound: 0, Program: gather.NewProgram(ring6Seq)},
				{Label: 9, Start: 3, WakeRound: sim.DormantUntilVisited, Program: gather.NewProgram(ring6Seq)},
			}},
		},
		"gossip": {
			sp: ScenarioSpec{
				Graph: GraphSpec{Family: "ring", N: 4},
				Agents: []AgentSpec{
					{Label: 1, Start: 0, Algorithm: Gossip("10")},
					{Label: 2, Start: 2, Algorithm: Gossip("1")},
				},
			},
			hand: sim.Scenario{Graph: ring4, Agents: []sim.AgentSpec{
				{Label: 1, Start: 0, WakeRound: 0, Program: gossip.NewProgram(ring4Seq, "10")},
				{Label: 2, Start: 2, WakeRound: 0, Program: gossip.NewProgram(ring4Seq, "1")},
			}},
		},
		"unknown": {
			sp: ScenarioSpec{
				Graph: GraphSpec{Family: "two"},
				Agents: []AgentSpec{
					{Label: 1, Start: 0, Algorithm: Unknown(0, 0)},
					{Label: 2, Start: 1, Algorithm: Unknown(0, 0)},
				},
			},
			hand: sim.Scenario{Graph: two, Agents: []sim.AgentSpec{
				{Label: 1, Start: 0, WakeRound: 0, Program: unknown.NewProgram(unknown.DefaultParams())},
				{Label: 2, Start: 1, WakeRound: 0, Program: unknown.NewProgram(unknown.DefaultParams())},
			}},
		},
		// The seed exceeds 2^53 on purpose: it proves 64-bit params survive
		// the JSON round trip with full precision (json.Number decoding).
		"randomized": {
			sp: ScenarioSpec{
				Graph: GraphSpec{Family: "ring", N: 8},
				Agents: []AgentSpec{
					{Label: 1, Start: 0, Algorithm: Randomized(1<<60+3, 0)},
					{Label: 2, Start: 4, Algorithm: Randomized(1<<60+3, 0)},
				},
			},
			hand: sim.Scenario{Graph: ring8, Agents: []sim.AgentSpec{
				{Label: 1, Start: 0, WakeRound: 0, Program: randomized.RendezvousProgram(1<<60+3, 100*8*8*8)},
				{Label: 2, Start: 4, WakeRound: 0, Program: randomized.RendezvousProgram(1<<60+3, 100*8*8*8)},
			}},
		},
	}
	for _, name := range Algorithms() {
		if name == "baseline" || strings.HasPrefix(name, "test-") {
			continue // baseline has no hand-built sim form (see below);
			// test- names are registered by other tests of this package
		}
		tc, ok := cases[name]
		if !ok {
			t.Errorf("registered algorithm %q has no round-trip case; add one", name)
			continue
		}
		name, tc := name, tc
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			handRes, err := sim.Run(tc.hand)
			if err != nil {
				t.Fatalf("hand-built run: %v", err)
			}
			specRes := mustRun(t, roundTrip(t, tc.sp))
			if !reflect.DeepEqual(handRes, specRes) {
				t.Errorf("spec→JSON→compile run diverges from hand-built run:\nhand %+v\nspec %+v", handRes, specRes)
			}
		})
	}
}

// TestBaselineSpecMatchesCentralizedRun checks the baseline adapter: the
// spec-compiled replay reproduces the centralized baseline.Gather outcome
// (declaration round, node, leader, AllHaltedTogether) under the agent
// engine, and is itself JSON-round-trip stable.
func TestBaselineSpecMatchesCentralizedRun(t *testing.T) {
	g := graph.Ring(6)
	want, err := baseline.Gather(g, ues.Build(g), []baseline.Spec{
		{Label: 5, Start: 0}, {Label: 9, Start: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	sp := ScenarioSpec{
		Graph: GraphSpec{Family: "ring", N: 6},
		Agents: []AgentSpec{
			{Label: 5, Start: 0, Algorithm: Baseline()},
			{Label: 9, Start: 3, Algorithm: Baseline()},
		},
	}
	direct := mustRun(t, sp)
	viaJSON := mustRun(t, roundTrip(t, sp))
	if !reflect.DeepEqual(direct, viaJSON) {
		t.Errorf("baseline spec not JSON-round-trip stable:\ndirect %+v\nvia JSON %+v", direct, viaJSON)
	}
	if !direct.AllHaltedTogether() {
		t.Fatal("baseline replay did not gather with simultaneous declaration")
	}
	if direct.Rounds != want.Rounds || direct.Agents[0].FinalNode != want.Node {
		t.Errorf("baseline replay ended (round %d, node %d), centralized run says (round %d, node %d)",
			direct.Rounds, direct.Agents[0].FinalNode, want.Rounds, want.Node)
	}
	for _, a := range direct.Agents {
		if a.Report.Leader != want.Leader {
			t.Errorf("agent %d reports leader %d, want %d", a.Label, a.Report.Leader, want.Leader)
		}
	}
}

// TestCompiledScenarioIsReRunnable guards the contract benchharness and
// batch replays rely on: one compiled scenario can be run repeatedly with
// identical results (programs are stateless closures).
func TestCompiledScenarioIsReRunnable(t *testing.T) {
	sc, err := ScenarioSpec{
		Graph: GraphSpec{Family: "ring", N: 6},
		Agents: []AgentSpec{
			{Label: 5, Start: 0, Algorithm: Known()},
			{Label: 9, Start: 3, Algorithm: Known()},
		},
	}.Compile()
	if err != nil {
		t.Fatal(err)
	}
	first, err := sim.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	second, err := sim.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, second) {
		t.Error("re-running a compiled scenario diverged")
	}
}

// TestCompileErrors exercises the up-front validation path: every bad spec
// fails at compile time with a descriptive error, never mid-run.
func TestCompileErrors(t *testing.T) {
	agents := func(as ...AgentSpec) []AgentSpec { return as }
	cases := []struct {
		name string
		sp   ScenarioSpec
		want string
	}{
		{"unknown family", ScenarioSpec{Graph: GraphSpec{Family: "moebius", N: 5},
			Agents: agents(AgentSpec{Label: 1, Algorithm: Known()})}, "unknown graph family"},
		{"bad ring size", ScenarioSpec{Graph: GraphSpec{Family: "ring", N: 2},
			Agents: agents(AgentSpec{Label: 1, Algorithm: Known()})}, "ring needs n >= 3"},
		{"bad gnp p", ScenarioSpec{Graph: GraphSpec{Family: "gnp", N: 5, P: 1.5},
			Agents: agents(AgentSpec{Label: 1, Algorithm: Known()})}, "p must be in [0,1]"},
		{"unknown algorithm", ScenarioSpec{Graph: GraphSpec{Family: "ring", N: 4},
			Agents: agents(AgentSpec{Label: 1, Algorithm: AlgorithmSpec{Name: "teleport"}})}, "unknown algorithm"},
		{"duplicate label", ScenarioSpec{Graph: GraphSpec{Family: "ring", N: 4},
			Agents: agents(
				AgentSpec{Label: 3, Start: 0, Algorithm: Known()},
				AgentSpec{Label: 3, Start: 1, Algorithm: Known()})}, "duplicate agent label"},
		{"non-positive label", ScenarioSpec{Graph: GraphSpec{Family: "ring", N: 4},
			Agents: agents(AgentSpec{Label: 0, Start: 0, Algorithm: Known()})}, "labels must be positive"},
		{"start out of range", ScenarioSpec{Graph: GraphSpec{Family: "ring", N: 4},
			Agents: agents(AgentSpec{Label: 1, Start: 9, Algorithm: Known()})}, "start node out of range"},
		{"invalid wake", ScenarioSpec{Graph: GraphSpec{Family: "ring", N: 4},
			Agents: agents(AgentSpec{Label: 1, Start: 0, Wake: -7, Algorithm: Known()})}, "invalid wake round"},
		{"nobody wakes", ScenarioSpec{Graph: GraphSpec{Family: "ring", N: 4},
			Agents: agents(AgentSpec{Label: 1, Start: 0, Wake: 5, Algorithm: Known()})}, "must wake at round 0"},
		{"no agents", ScenarioSpec{Graph: GraphSpec{Family: "ring", N: 4}}, "at least one agent"},
		{"unknown profile too small", ScenarioSpec{Graph: GraphSpec{Family: "ring", N: 8},
			Agents: agents(
				AgentSpec{Label: 1, Start: 0, Algorithm: Unknown(0, 0)},
				AgentSpec{Label: 2, Start: 4, Algorithm: Unknown(0, 0)})}, "profile supports at most"},
		{"baseline mixed", ScenarioSpec{Graph: GraphSpec{Family: "ring", N: 4},
			Agents: agents(
				AgentSpec{Label: 1, Start: 0, Algorithm: Baseline()},
				AgentSpec{Label: 2, Start: 2, Algorithm: Known()})}, "cannot mix"},
		{"baseline delayed wake", ScenarioSpec{Graph: GraphSpec{Family: "ring", N: 4},
			Agents: agents(
				AgentSpec{Label: 1, Start: 0, Algorithm: Baseline()},
				AgentSpec{Label: 2, Start: 2, Wake: 3, Algorithm: Baseline()})}, "simultaneous wake-up"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := tc.sp.Compile()
			if err == nil {
				t.Fatalf("compile succeeded, want error containing %q", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not contain %q", err, tc.want)
			}
		})
	}
}

// TestParseRejectsUnknownFields keeps hand-edited spec files honest.
func TestParseRejectsUnknownFields(t *testing.T) {
	if _, err := Parse([]byte(`{"graph": {"family": "ring", "n": 4}, "agnts": []}`)); err == nil {
		t.Error("typo'd field parsed without error")
	}
}

// TestParseRejectsTrailingContent: a double-pasted or half-truncated spec
// file must not silently run its first object.
func TestParseRejectsTrailingContent(t *testing.T) {
	doubled := `{"graph": {"family": "ring", "n": 4}, "agents": []}` + "\n" +
		`{"graph": {"family": "ring", "n": 8}, "agents": []}`
	if _, err := Parse([]byte(doubled)); err == nil || !strings.Contains(err.Error(), "trailing") {
		t.Errorf("trailing content parsed without error: %v", err)
	}
	// A trailing newline alone stays fine.
	if _, err := Parse([]byte(`{"graph": {"family": "ring", "n": 4}, "agents": []}` + "\n")); err != nil {
		t.Errorf("trailing newline rejected: %v", err)
	}
}

// TestBadParamsFailLoudly: non-integral or negative numeric params are
// compile errors, never silent truncations.
func TestBadParamsFailLoudly(t *testing.T) {
	for name, params := range map[string]map[string]any{
		"fractional radius_cap": {"radius_cap": 2.7},
		"string radius_cap":     {"radius_cap": "big"},
	} {
		sp := ScenarioSpec{
			Graph: GraphSpec{Family: "two"},
			Agents: []AgentSpec{
				{Label: 1, Start: 0, Algorithm: AlgorithmSpec{Name: "unknown", Params: params}},
				{Label: 2, Start: 1, Algorithm: Unknown(0, 0)},
			},
		}
		if _, err := sp.Compile(); err == nil {
			t.Errorf("%s compiled without error", name)
		}
	}
	sp := ScenarioSpec{
		Graph: GraphSpec{Family: "ring", N: 4},
		Agents: []AgentSpec{
			{Label: 1, Start: 0, Algorithm: AlgorithmSpec{Name: "randomized", Params: map[string]any{"seed": -1}}},
			{Label: 2, Start: 2, Algorithm: Randomized(1, 0)},
		},
	}
	if _, err := sp.Compile(); err == nil || !strings.Contains(err.Error(), "negative") {
		t.Errorf("negative seed compiled: %v", err)
	}
	sp = ScenarioSpec{
		Graph: GraphSpec{Family: "ring", N: 4},
		Agents: []AgentSpec{
			{Label: 1, Start: 0, Algorithm: AlgorithmSpec{Name: "gossip", Params: map[string]any{"message": 101}}},
			{Label: 2, Start: 2, Algorithm: Gossip("1")},
		},
	}
	if _, err := sp.Compile(); err == nil || !strings.Contains(err.Error(), "not a string") {
		t.Errorf("numeric gossip message compiled: %v", err)
	}
}

// TestRegisterCustomAlgorithm proves user programs are first-class: a
// registered name compiles from a spec like the built-ins.
func TestRegisterCustomAlgorithm(t *testing.T) {
	RegisterAlgorithm("test-sleeper", func(ar *Artifacts, ag AgentSpec) (sim.Program, error) {
		rounds, err := ag.Algorithm.ParamInt("rounds", 1)
		if err != nil {
			return nil, err
		}
		return func(a *sim.API) sim.Report {
			a.WaitRounds(rounds)
			return sim.Report{Leader: a.Label()}
		}, nil
	})
	sp := ScenarioSpec{
		Graph: GraphSpec{Family: "two"},
		Agents: []AgentSpec{{Label: 7, Start: 0,
			Algorithm: AlgorithmSpec{Name: "test-sleeper", Params: map[string]any{"rounds": 42}}}},
	}
	res := mustRun(t, roundTrip(t, sp))
	if res.Rounds != 42 || res.Agents[0].Report.Leader != 7 {
		t.Errorf("custom algorithm run: rounds %d leader %d", res.Rounds, res.Agents[0].Report.Leader)
	}
}

// TestRegisterCustomGraphFamily proves user graph families are first-class.
func TestRegisterCustomGraphFamily(t *testing.T) {
	RegisterGraphFamily("test-triangle", func(gs GraphSpec) (*graph.Graph, error) {
		return graph.Ring(3), nil
	})
	g, err := BuildGraph(GraphSpec{Family: "test-triangle"})
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 {
		t.Errorf("custom family built n=%d", g.N())
	}
}
