package spec

import (
	"fmt"
	"strconv"
	"strings"
)

// Team is the team axis of a sweep: labels plus optional explicit start
// nodes and wake rounds. Nil Starts spreads the team evenly over the graph
// (agent i at node ⌊i·N/k⌋); nil Wakes wakes everyone at round 0.
type Team struct {
	Labels []int `json:"labels"`
	Starts []int `json:"starts,omitempty"`
	Wakes  []int `json:"wakes,omitempty"`
}

// TeamOfSize returns the canonical k-agent team: labels 1..k at nodes
// 0..k-1 — the team-size axis of sweeps like experiment E4.
func TeamOfSize(k int) Team {
	labels := make([]int, k)
	starts := make([]int, k)
	for i := 0; i < k; i++ {
		labels[i] = i + 1
		starts[i] = i
	}
	return Team{Labels: labels, Starts: starts}
}

// Sweep composes scenario specs from axes: graphs (explicit GraphSpecs
// and/or a families × sizes product), teams, optional wake-schedule
// overrides and algorithms. By default the axes multiply cartesianly in
// fixed order (graphs outermost, algorithms innermost); Zip pairs the
// graph and team axes index-wise instead, for case lists like experiment
// E1 where each graph comes with its own team.
//
// A Sweep yields ScenarioSpecs — pure data — so a sweep definition is three
// lines of configuration, and everything downstream (compilation, batching,
// streaming) is shared machinery:
//
//	specs, err := spec.NewSweep().
//		Families("ring", "gnp").Sizes(8, 16, 32).
//		Teams(spec.Team{Labels: []int{1, 2}}).
//		Name("sweep-{family}-n{n}-k{k}").
//		Specs()
type Sweep struct {
	name      string
	graphs    []GraphSpec
	families  []string
	sizes     []int
	teams     []Team
	wakes     [][]int
	algos     []AlgorithmSpec
	maxRounds int
	zip       bool
	filters   []func(ScenarioSpec) bool
	err       error // deferred construction error; Each surfaces it
}

// NewSweep returns an empty sweep; add axes with the chainable setters.
func NewSweep() *Sweep { return &Sweep{} }

// fail marks the sweep broken; Each (and so Specs) will return err instead
// of expanding. Construction paths that must not panic on untrusted input
// (SweepDef.Sweep) use it to defer their validation error.
func (s *Sweep) fail(err error) *Sweep {
	if s.err == nil {
		s.err = err
	}
	return s
}

// Name sets the spec-name template. Placeholders {i}, {family}, {n}, {k},
// {algo} and {wake} expand per generated spec ({wake} is the index into the
// wake-schedule axis, 0 without one).
func (s *Sweep) Name(template string) *Sweep { s.name = template; return s }

// Graphs appends explicit graph specs to the graph axis.
func (s *Sweep) Graphs(gs ...GraphSpec) *Sweep { s.graphs = append(s.graphs, gs...); return s }

// Families sets the family half of the families × sizes product, appended
// to the graph axis after any explicit Graphs.
func (s *Sweep) Families(fams ...string) *Sweep { s.families = append(s.families, fams...); return s }

// Sizes sets the size half of the families × sizes product.
func (s *Sweep) Sizes(ns ...int) *Sweep { s.sizes = append(s.sizes, ns...); return s }

// Teams appends teams to the team axis.
func (s *Sweep) Teams(ts ...Team) *Sweep { s.teams = append(s.teams, ts...); return s }

// TeamSizes appends canonical teams (labels 1..k at nodes 0..k-1) for each
// size to the team axis.
func (s *Sweep) TeamSizes(ks ...int) *Sweep {
	for _, k := range ks {
		s.teams = append(s.teams, TeamOfSize(k))
	}
	return s
}

// WakeSchedules adds a wake-schedule axis: each schedule overrides the
// team's own Wakes (lengths must match the team size; nil restores the
// team's default).
func (s *Sweep) WakeSchedules(ws ...[]int) *Sweep { s.wakes = append(s.wakes, ws...); return s }

// Algorithms sets the algorithm axis; every agent of a generated spec runs
// the same algorithm. Omitting it selects Known. Per-agent algorithms
// (gossip messages) are a property of Teams-less hand-built specs, not of
// sweeps.
func (s *Sweep) Algorithms(as ...AlgorithmSpec) *Sweep { s.algos = append(s.algos, as...); return s }

// MaxRounds sets the round budget of every generated spec.
func (s *Sweep) MaxRounds(n int) *Sweep { s.maxRounds = n; return s }

// Zip pairs the graph and team axes index-wise (they must have equal
// lengths) instead of multiplying them.
func (s *Sweep) Zip() *Sweep { s.zip = true; return s }

// Filter keeps only specs for which keep returns true; multiple filters
// conjoin.
func (s *Sweep) Filter(keep func(ScenarioSpec) bool) *Sweep {
	s.filters = append(s.filters, keep)
	return s
}

// graphAxis materializes explicit graphs plus the families × sizes product.
func (s *Sweep) graphAxis() []GraphSpec {
	out := append([]GraphSpec{}, s.graphs...)
	for _, fam := range s.families {
		for _, n := range s.sizes {
			out = append(out, GraphSpec{Family: fam, N: n})
		}
	}
	return out
}

// Each generates the sweep's specs in deterministic order and hands each to
// yield; returning false stops early. It streams: nothing is materialized
// beyond the spec under construction.
func (s *Sweep) Each(yield func(ScenarioSpec) bool) error {
	if s.err != nil {
		return s.err
	}
	graphs := s.graphAxis()
	if len(graphs) == 0 {
		return fmt.Errorf("spec: sweep has no graphs (use Graphs or Families+Sizes)")
	}
	if len(s.teams) == 0 {
		return fmt.Errorf("spec: sweep has no teams (use Teams or TeamSizes)")
	}
	if s.zip && len(graphs) != len(s.teams) {
		return fmt.Errorf("spec: Zip needs equally long graph and team axes, got %d graphs and %d teams",
			len(graphs), len(s.teams))
	}
	wakes := s.wakes
	if len(wakes) == 0 {
		wakes = [][]int{nil}
	}
	algos := s.algos
	if len(algos) == 0 {
		algos = []AlgorithmSpec{Known()}
	}
	i := 0
	emit := func(gs GraphSpec, team Team) (bool, error) {
		// Spread starts depend only on (graph, team): resolve them once,
		// not per wake × algorithm combination.
		starts, err := resolveStarts(gs, team)
		if err != nil {
			return false, err
		}
		for wi, wake := range wakes {
			for _, algo := range algos {
				sp, err := s.buildSpec(gs, team, starts, wake, algo, i, wi)
				if err != nil {
					return false, err
				}
				i++
				if !s.keep(sp) {
					continue
				}
				if !yield(sp) {
					return false, nil
				}
			}
		}
		return true, nil
	}
	if s.zip {
		for gi, gs := range graphs {
			if cont, err := emit(gs, s.teams[gi]); !cont || err != nil {
				return err
			}
		}
		return nil
	}
	for _, gs := range graphs {
		for _, team := range s.teams {
			if cont, err := emit(gs, team); !cont || err != nil {
				return err
			}
		}
	}
	return nil
}

// Specs materializes the whole sweep as a slice.
func (s *Sweep) Specs() ([]ScenarioSpec, error) {
	var out []ScenarioSpec
	err := s.Each(func(sp ScenarioSpec) bool {
		out = append(out, sp)
		return true
	})
	return out, err
}

// SpreadStarts returns the default start placement for a k-agent team on
// the given graph: agent j at node ⌊j·N/k⌋, spreading the team evenly.
// It is the single source of the spread policy, shared by sweeps and
// cmd/gathersim. The spread needs the built graph's size, which for most
// families is gs.N but not for all (hypercube, grid shapes), so the graph
// is built through the registry — cheap, and the compile step rebuilds it
// anyway.
func SpreadStarts(gs GraphSpec, k int) ([]int, error) {
	if k <= 0 {
		return nil, fmt.Errorf("spec: spread needs a positive team size, got %d", k)
	}
	g, err := BuildGraph(gs)
	if err != nil {
		return nil, err
	}
	starts := make([]int, k)
	for j := 0; j < k; j++ {
		starts[j] = (j * g.N()) / k
	}
	return starts, nil
}

// resolveStarts returns the team's start nodes, spreading agents evenly
// over the graph when none are given.
func resolveStarts(gs GraphSpec, team Team) ([]int, error) {
	if team.Starts != nil {
		return team.Starts, nil
	}
	if len(team.Labels) == 0 {
		return nil, fmt.Errorf("spec: sweep team %v has no labels", team)
	}
	return SpreadStarts(gs, len(team.Labels))
}

// buildSpec assembles one spec of the product.
func (s *Sweep) buildSpec(gs GraphSpec, team Team, starts []int, wake []int, algo AlgorithmSpec, i, wi int) (ScenarioSpec, error) {
	k := len(team.Labels)
	if k == 0 {
		return ScenarioSpec{}, fmt.Errorf("spec: sweep team %v has no labels", team)
	}
	if wake == nil {
		wake = team.Wakes
	}
	if len(starts) != k || (wake != nil && len(wake) != k) {
		return ScenarioSpec{}, fmt.Errorf("spec: sweep team labels/starts/wakes length mismatch (%d/%d/%d)",
			k, len(starts), len(wake))
	}
	agents := make([]AgentSpec, k)
	for j := 0; j < k; j++ {
		w := 0
		if wake != nil {
			w = wake[j]
		}
		agents[j] = AgentSpec{Label: team.Labels[j], Start: starts[j], Wake: w, Algorithm: algo}
	}
	return ScenarioSpec{
		Name:      expandName(s.name, gs, k, algo, i, wi),
		Graph:     gs,
		Agents:    agents,
		MaxRounds: s.maxRounds,
	}, nil
}

func (s *Sweep) keep(sp ScenarioSpec) bool {
	for _, f := range s.filters {
		if !f(sp) {
			return false
		}
	}
	return true
}

// expandName fills the {placeholder}s of a name template.
func expandName(template string, gs GraphSpec, k int, algo AlgorithmSpec, i, wi int) string {
	if template == "" {
		return ""
	}
	return strings.NewReplacer(
		"{i}", strconv.Itoa(i),
		"{family}", gs.Family,
		"{n}", strconv.Itoa(gs.N),
		"{k}", strconv.Itoa(k),
		"{algo}", algo.Name,
		"{wake}", strconv.Itoa(wi),
	).Replace(template)
}
