package spec

import (
	"strings"
	"testing"

	"nochatter/internal/sim"
)

func TestSweepCartesianOrderAndNames(t *testing.T) {
	specs, err := NewSweep().
		Families("ring", "path").Sizes(4, 6).
		Teams(Team{Labels: []int{1, 2}}).
		Algorithms(Known(), Gossip("1")).
		Name("{family}-n{n}-k{k}-{algo}").
		Specs()
	if err != nil {
		t.Fatal(err)
	}
	// graphs (families × sizes) outermost, algorithms innermost.
	want := []string{
		"ring-n4-k2-known", "ring-n4-k2-gossip",
		"ring-n6-k2-known", "ring-n6-k2-gossip",
		"path-n4-k2-known", "path-n4-k2-gossip",
		"path-n6-k2-known", "path-n6-k2-gossip",
	}
	if len(specs) != len(want) {
		t.Fatalf("got %d specs, want %d", len(specs), len(want))
	}
	for i, sp := range specs {
		if sp.Name != want[i] {
			t.Errorf("spec %d named %q, want %q", i, sp.Name, want[i])
		}
	}
}

func TestSweepSpreadStarts(t *testing.T) {
	specs, err := NewSweep().
		Graphs(GraphSpec{Family: "ring", N: 8}).
		Teams(Team{Labels: []int{1, 2}}).
		Specs()
	if err != nil {
		t.Fatal(err)
	}
	ag := specs[0].Agents
	if ag[0].Start != 0 || ag[1].Start != 4 {
		t.Errorf("spread starts %d,%d, want antipodal 0,4", ag[0].Start, ag[1].Start)
	}
}

func TestSweepZip(t *testing.T) {
	specs, err := NewSweep().Zip().
		Graphs(GraphSpec{Family: "ring", N: 4}, GraphSpec{Family: "path", N: 5}).
		Teams(
			Team{Labels: []int{1, 2}, Starts: []int{0, 2}},
			Team{Labels: []int{3, 4, 5}, Starts: []int{0, 2, 4}},
		).
		Specs()
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 2 || len(specs[0].Agents) != 2 || len(specs[1].Agents) != 3 {
		t.Fatalf("zip did not pair axes index-wise: %+v", specs)
	}
	if _, err := NewSweep().Zip().
		Graphs(GraphSpec{Family: "ring", N: 4}).
		Teams(Team{Labels: []int{1}}, Team{Labels: []int{2}}).
		Specs(); err == nil || !strings.Contains(err.Error(), "equally long") {
		t.Errorf("zip length mismatch not rejected: %v", err)
	}
}

func TestSweepWakeSchedulesAndTeamSizes(t *testing.T) {
	specs, err := NewSweep().
		Graphs(GraphSpec{Family: "ring", N: 8}).
		TeamSizes(2).
		WakeSchedules(nil, []int{0, 9}, []int{0, sim.DormantUntilVisited}).
		Specs()
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 3 {
		t.Fatalf("got %d specs, want 3", len(specs))
	}
	if specs[0].Agents[1].Wake != 0 || specs[1].Agents[1].Wake != 9 ||
		specs[2].Agents[1].Wake != sim.DormantUntilVisited {
		t.Errorf("wake schedules not applied: %+v", specs)
	}
	// TeamSizes packs labels 1..k at nodes 0..k-1.
	if specs[0].Agents[0].Label != 1 || specs[0].Agents[1].Label != 2 ||
		specs[0].Agents[0].Start != 0 || specs[0].Agents[1].Start != 1 {
		t.Errorf("TeamSizes team malformed: %+v", specs[0].Agents)
	}
}

func TestSweepFilter(t *testing.T) {
	specs, err := NewSweep().
		Families("ring").Sizes(4, 6, 8, 10).
		Teams(Team{Labels: []int{1, 2}}).
		Filter(func(sp ScenarioSpec) bool { return sp.Graph.N >= 8 }).
		Specs()
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 2 || specs[0].Graph.N != 8 || specs[1].Graph.N != 10 {
		t.Errorf("filter kept %+v", specs)
	}
}

func TestSweepEachStopsEarly(t *testing.T) {
	n := 0
	err := NewSweep().
		Families("ring").Sizes(4, 6, 8, 10).
		Teams(Team{Labels: []int{1, 2}}).
		Each(func(ScenarioSpec) bool {
			n++
			return n < 2
		})
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Errorf("yield called %d times after stop at 2", n)
	}
}

func TestSweepEmptyAxesRejected(t *testing.T) {
	if _, err := NewSweep().Teams(Team{Labels: []int{1}}).Specs(); err == nil {
		t.Error("sweep without graphs not rejected")
	}
	if _, err := NewSweep().Families("ring").Sizes(4).Specs(); err == nil {
		t.Error("sweep without teams not rejected")
	}
}

// TestSweepSpecsCompileAndGather is the end-to-end check: a sweep's specs
// compile and the compiled scenarios actually gather.
func TestSweepSpecsCompileAndGather(t *testing.T) {
	specs, err := NewSweep().
		Families("ring", "star").Sizes(4, 5).
		Teams(Team{Labels: []int{2, 7}}).
		Name("sweep-{family}-{n}").
		Specs()
	if err != nil {
		t.Fatal(err)
	}
	scs := make([]sim.Scenario, len(specs))
	for i, sp := range specs {
		if scs[i], err = sp.Compile(); err != nil {
			t.Fatalf("%s: %v", sp.Name, err)
		}
	}
	for _, br := range sim.RunBatch(scs) {
		if br.Err != nil {
			t.Fatalf("%s: %v", specs[br.Index].Name, br.Err)
		}
		if !br.Result.AllHaltedTogether() {
			t.Errorf("%s: did not gather", specs[br.Index].Name)
		}
	}
}
