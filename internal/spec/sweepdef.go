package spec

import (
	"bytes"
	"encoding/json"
	"fmt"
)

// SweepDef is the JSON-serializable form of a Sweep: the same axes the
// builder composes, as pure data, so a whole sweep — not just its expanded
// specs — can be saved, submitted over HTTP (POST /v1/sweeps) and replayed.
// Filters are the one builder feature with no data form (they are opaque Go
// predicates); a Sweep carrying filters refuses to serialize.
type SweepDef struct {
	// Name is the per-spec name template (see Sweep.Name placeholders). It
	// applies to axis-generated specs only; Explicit specs keep their own.
	Name string `json:"name,omitempty"`
	// Explicit lists fully-built scenario specs, emitted before any axis
	// expansion. It is how an arbitrary spec list — one a builder cannot
	// express, such as a contiguous shard of another sweep's expansion
	// (internal/cluster) — travels as a sweep document.
	Explicit []ScenarioSpec `json:"specs,omitempty"`
	// Graphs lists explicit graph specs; Families × Sizes appends its
	// product after them.
	Graphs   []GraphSpec `json:"graphs,omitempty"`
	Families []string    `json:"families,omitempty"`
	Sizes    []int       `json:"sizes,omitempty"`
	// Teams lists explicit teams; TeamSizes appends canonical k-agent
	// teams (labels 1..k at nodes 0..k-1) after them.
	Teams     []Team  `json:"teams,omitempty"`
	TeamSizes []int   `json:"team_sizes,omitempty"`
	Wakes     [][]int `json:"wakes,omitempty"`
	// Algorithms is the algorithm axis; empty selects Known.
	Algorithms []AlgorithmSpec `json:"algorithms,omitempty"`
	MaxRounds  int             `json:"max_rounds,omitempty"`
	// Zip pairs the graph and team axes index-wise instead of multiplying.
	Zip bool `json:"zip,omitempty"`
}

// Validate rejects definition values the builder would panic on rather
// than error: SweepDefs arrive from untrusted JSON, so bad values are user
// input. Sweep and Specs call it; axis-level errors (no graphs, length
// mismatches) still surface at expansion time as with the builder.
func (d SweepDef) Validate() error {
	for _, k := range d.TeamSizes {
		if k < 1 {
			return fmt.Errorf("spec: sweep team size %d is not positive", k)
		}
	}
	return nil
}

// Sweep builds the live sweep the definition's axes describe; Explicit
// specs have no builder form and are not part of it — expand through Specs
// to get them too.
func (d SweepDef) Sweep() *Sweep {
	if err := d.Validate(); err != nil {
		return NewSweep().fail(err)
	}
	s := NewSweep().Name(d.Name).
		Graphs(d.Graphs...).Families(d.Families...).Sizes(d.Sizes...).
		Teams(d.Teams...).TeamSizes(d.TeamSizes...).
		WakeSchedules(d.Wakes...).Algorithms(d.Algorithms...).
		MaxRounds(d.MaxRounds)
	if d.Zip {
		s.Zip()
	}
	return s
}

// Specs expands the definition into its scenario specs: the Explicit list
// first, then the axis product. A definition with neither explicit specs
// nor axes fails like an axis-less builder sweep would.
func (d SweepDef) Specs() ([]ScenarioSpec, error) {
	if len(d.Explicit) > 0 && !d.hasAxes() {
		return append([]ScenarioSpec(nil), d.Explicit...), nil
	}
	expanded, err := d.Sweep().Specs()
	if err != nil {
		return nil, err
	}
	if len(d.Explicit) == 0 {
		return expanded, nil
	}
	return append(append([]ScenarioSpec(nil), d.Explicit...), expanded...), nil
}

// hasAxes reports whether any axis field is set — whether Sweep() has
// anything to expand.
func (d SweepDef) hasAxes() bool {
	return len(d.Graphs)+len(d.Families)+len(d.Sizes)+len(d.Teams)+
		len(d.TeamSizes)+len(d.Wakes)+len(d.Algorithms) > 0
}

// MarshalIndentJSON renders the definition as indented JSON.
func (d SweepDef) MarshalIndentJSON() ([]byte, error) {
	buf, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(buf, '\n'), nil
}

// ParseSweepDef decodes a SweepDef from JSON with the same strictness as
// Parse: unknown fields and trailing content are rejected, and numbers
// decode as json.Number so 64-bit algorithm parameters keep full precision.
func ParseSweepDef(data []byte) (SweepDef, error) {
	var d SweepDef
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	dec.UseNumber()
	if err := dec.Decode(&d); err != nil {
		return SweepDef{}, fmt.Errorf("spec: parse sweep: %w", err)
	}
	if dec.More() {
		return SweepDef{}, fmt.Errorf("spec: parse sweep: trailing content after the sweep definition")
	}
	return d, nil
}

// Def returns the sweep's serializable definition. It fails when the sweep
// carries filters: a Go predicate has no data form, so a filtered sweep is
// not round-trippable and silently dropping the filter would change the
// generated specs.
func (s *Sweep) Def() (SweepDef, error) {
	if len(s.filters) > 0 {
		return SweepDef{}, fmt.Errorf("spec: a sweep with filters has no serializable definition")
	}
	return SweepDef{
		Name:       s.name,
		Graphs:     s.graphs,
		Families:   s.families,
		Sizes:      s.sizes,
		Teams:      s.teams,
		Wakes:      s.wakes,
		Algorithms: s.algos,
		MaxRounds:  s.maxRounds,
		Zip:        s.zip,
	}, nil
}
