package spec

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

func specsJSON(t *testing.T, sps []ScenarioSpec) string {
	t.Helper()
	buf, err := json.Marshal(sps)
	if err != nil {
		t.Fatalf("marshal specs: %v", err)
	}
	return string(buf)
}

// TestSweepDefRoundTrip proves a builder sweep survives the data form:
// builder → Def → JSON → ParseSweepDef → Sweep generates the identical
// spec list.
func TestSweepDefRoundTrip(t *testing.T) {
	s := NewSweep().
		Name("rt-{family}-n{n}-k{k}-{algo}-w{wake}").
		Families("ring", "path").Sizes(4, 6).
		Graphs(GraphSpec{Family: "gnp", N: 8, P: 0.4, Seed: 7}).
		Teams(Team{Labels: []int{3, 5, 7}, Starts: []int{0, 1, 2}}).
		TeamSizes(3).
		WakeSchedules(nil, []int{0, 1, 2}).
		Algorithms(Known(), Randomized(1<<60+3, 0)).
		MaxRounds(123)
	want, err := s.Specs()
	if err != nil {
		t.Fatalf("original sweep: %v", err)
	}

	def, err := s.Def()
	if err != nil {
		t.Fatalf("Def: %v", err)
	}
	buf, err := def.MarshalIndentJSON()
	if err != nil {
		t.Fatalf("marshal def: %v", err)
	}
	parsed, err := ParseSweepDef(buf)
	if err != nil {
		t.Fatalf("parse def: %v", err)
	}
	got, err := parsed.Specs()
	if err != nil {
		t.Fatalf("round-tripped sweep: %v", err)
	}
	// Compare through JSON: params round-trip as json.Number, so the wire
	// form — what compilation and hashing consume — is the equality that
	// matters.
	if g, w := specsJSON(t, got), specsJSON(t, want); g != w {
		t.Errorf("round-tripped sweep diverges:\ngot  %s\nwant %s", g, w)
	}
	if len(want) == 0 {
		t.Fatalf("sweep generated no specs")
	}
}

// TestSweepDefWakeSchedulesRespectTeamSize guards the wake axis through the
// data form: schedules whose length mismatches the team must still fail.
func TestSweepDefWakeSchedulesRespectTeamSize(t *testing.T) {
	def := SweepDef{
		Families: []string{"ring"},
		Sizes:    []int{4},
		Teams:    []Team{{Labels: []int{1, 2}}},
		Wakes:    [][]int{{0, 1, 2}},
	}
	if _, err := def.Specs(); err == nil || !strings.Contains(err.Error(), "mismatch") {
		t.Errorf("mismatched wake schedule: err=%v, want length mismatch", err)
	}
}

// TestSweepDefZipAndTeamSizes exercises the two remaining axes knobs in
// data form.
func TestSweepDefZipAndTeamSizes(t *testing.T) {
	def := SweepDef{
		Graphs: []GraphSpec{{Family: "ring", N: 6}, {Family: "path", N: 5}},
		Teams:  []Team{{Labels: []int{1}}, {Labels: []int{1, 2}}},
		Zip:    true,
	}
	sps, err := def.Specs()
	if err != nil {
		t.Fatalf("zip sweep: %v", err)
	}
	if len(sps) != 2 || len(sps[0].Agents) != 1 || len(sps[1].Agents) != 2 {
		t.Fatalf("zip pairing broken: %+v", sps)
	}
	def2 := SweepDef{Families: []string{"ring"}, Sizes: []int{8}, TeamSizes: []int{2, 3}}
	sps2, err := def2.Specs()
	if err != nil {
		t.Fatalf("team_sizes sweep: %v", err)
	}
	if len(sps2) != 2 || len(sps2[0].Agents) != 2 || len(sps2[1].Agents) != 3 {
		t.Fatalf("team_sizes expansion broken: got %d specs", len(sps2))
	}
	// The canonical team matches TeamOfSize.
	if !reflect.DeepEqual(sps2[0].Agents[0], AgentSpec{Label: 1, Start: 0, Algorithm: Known()}) {
		t.Errorf("canonical team drifted: %+v", sps2[0].Agents[0])
	}
}

// TestSweepDefRejectsUnknownFields keeps hand-written sweep documents
// honest, exactly like spec parsing.
func TestSweepDefRejectsUnknownFields(t *testing.T) {
	if _, err := ParseSweepDef([]byte(`{"families":["ring"],"sizzes":[4]}`)); err == nil {
		t.Errorf("unknown field accepted")
	}
	if _, err := ParseSweepDef([]byte(`{"families":["ring"]} trailing`)); err == nil {
		t.Errorf("trailing content accepted")
	}
}

// TestSweepWithFiltersHasNoDef pins the one deliberate serialization gap:
// opaque filter predicates cannot be represented, so Def must refuse rather
// than silently drop them.
func TestSweepWithFiltersHasNoDef(t *testing.T) {
	s := NewSweep().Families("ring").Sizes(4).TeamSizes(2).
		Filter(func(ScenarioSpec) bool { return true })
	if _, err := s.Def(); err == nil || !strings.Contains(err.Error(), "filters") {
		t.Errorf("filtered sweep serialized: err=%v", err)
	}
}

// TestSweepDefExplicitSpecs covers the explicit spec list — the wire form
// cluster shards travel in: explicit-only definitions expand to exactly
// that list, explicit + axes concatenate (explicit first), and the list
// survives a JSON round trip bit-identically.
func TestSweepDefExplicitSpecs(t *testing.T) {
	axes := SweepDef{Families: []string{"ring", "path"}, Sizes: []int{4, 6}, TeamSizes: []int{2}}
	expanded, err := axes.Specs()
	if err != nil {
		t.Fatalf("axes expansion: %v", err)
	}
	shard := expanded[1:3] // a contiguous shard of another sweep's expansion

	// Explicit-only: expansion is the list itself, no graph/team axes needed.
	only := SweepDef{Explicit: shard}
	got, err := only.Specs()
	if err != nil {
		t.Fatalf("explicit-only expansion: %v", err)
	}
	if !reflect.DeepEqual(got, shard) {
		t.Fatalf("explicit-only expansion drifted:\n%s\n%s", specsJSON(t, got), specsJSON(t, shard))
	}

	// Round trip through the wire form.
	buf, err := json.Marshal(only)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseSweepDef(buf)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	got2, err := back.Specs()
	if err != nil {
		t.Fatal(err)
	}
	if specsJSON(t, got2) != specsJSON(t, shard) {
		t.Fatalf("wire round trip changed the specs:\n%s\n%s", specsJSON(t, got2), specsJSON(t, shard))
	}

	// Explicit + axes: explicit specs come first, then the axis product.
	both := SweepDef{Explicit: shard, Families: []string{"complete"}, Sizes: []int{5}, TeamSizes: []int{2}}
	got3, err := both.Specs()
	if err != nil {
		t.Fatal(err)
	}
	if len(got3) != len(shard)+1 {
		t.Fatalf("explicit+axes expanded to %d specs, want %d", len(got3), len(shard)+1)
	}
	if !reflect.DeepEqual(got3[:len(shard)], shard) || got3[len(shard)].Graph.Family != "complete" {
		t.Fatalf("explicit+axes order drifted: %s", specsJSON(t, got3))
	}

	// A definition with neither explicit specs nor axes still fails.
	if _, err := (SweepDef{}).Specs(); err == nil {
		t.Error("empty definition expanded without error")
	}
}
