// Package trace provides the small reporting utilities the benchmark
// harness uses to render experiment tables: fixed-width text tables and CSV,
// written from rows of arbitrary cells.
package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// Table accumulates rows and renders them aligned.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// Len returns the number of data rows.
func (t *Table) Len() int { return len(t.rows) }

// Render writes the aligned text table.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "%s\n", t.Title)
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintf(w, "  %s\n", strings.Join(parts, "  "))
	}
	line(t.Headers)
	rule := make([]string, len(t.Headers))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	line(rule)
	for _, row := range t.rows {
		line(row)
	}
}

// RenderCSV writes the table as RFC 4180 CSV: cells containing commas,
// quotes or newlines are quoted and escaped, so downstream parsers read
// back exactly the cells AddRow was given. A table with no headers and no
// rows writes nothing at all — not even an empty record.
func (t *Table) RenderCSV(w io.Writer) {
	cw := csv.NewWriter(w)
	if len(t.Headers) > 0 {
		_ = cw.Write(t.Headers)
	}
	for _, row := range t.rows {
		_ = cw.Write(row)
	}
	cw.Flush()
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}
