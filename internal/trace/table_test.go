package trace

import (
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tb := NewTable("title", "a", "bee", "c")
	tb.AddRow(1, "xx", 3.14159)
	tb.AddRow("long-cell", "y", 2)
	var sb strings.Builder
	tb.Render(&sb)
	out := sb.String()
	if !strings.HasPrefix(out, "title\n") {
		t.Errorf("missing title: %q", out)
	}
	for _, want := range []string{"a", "bee", "c", "long-cell", "3.14", "---"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Errorf("got %d lines, want 5:\n%s", len(lines), out)
	}
	// Columns align: every data line has the same length.
	if len(lines[1]) != len(lines[2]) {
		t.Errorf("header and rule misaligned:\n%s", out)
	}
	if tb.Len() != 2 {
		t.Errorf("Len = %d", tb.Len())
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("t", "x", "y")
	tb.AddRow(1, 2)
	tb.AddRow(3, 4)
	var sb strings.Builder
	tb.RenderCSV(&sb)
	want := "x,y\n1,2\n3,4\n"
	if sb.String() != want {
		t.Errorf("CSV = %q, want %q", sb.String(), want)
	}
}

func TestFloatFormatting(t *testing.T) {
	tb := NewTable("", "v")
	tb.AddRow(1.23456)
	var sb strings.Builder
	tb.RenderCSV(&sb)
	if !strings.Contains(sb.String(), "1.23") || strings.Contains(sb.String(), "1.2345") {
		t.Errorf("float should render with 2 decimals: %q", sb.String())
	}
}

func TestEmptyTable(t *testing.T) {
	tb := NewTable("", "only")
	var sb strings.Builder
	tb.Render(&sb)
	if tb.Len() != 0 {
		t.Errorf("Len = %d", tb.Len())
	}
	if !strings.Contains(sb.String(), "only") {
		t.Errorf("headers must render even when empty: %q", sb.String())
	}
}
