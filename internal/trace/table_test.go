package trace

import (
	"encoding/csv"
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tb := NewTable("title", "a", "bee", "c")
	tb.AddRow(1, "xx", 3.14159)
	tb.AddRow("long-cell", "y", 2)
	var sb strings.Builder
	tb.Render(&sb)
	out := sb.String()
	if !strings.HasPrefix(out, "title\n") {
		t.Errorf("missing title: %q", out)
	}
	for _, want := range []string{"a", "bee", "c", "long-cell", "3.14", "---"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Errorf("got %d lines, want 5:\n%s", len(lines), out)
	}
	// Columns align: every data line has the same length.
	if len(lines[1]) != len(lines[2]) {
		t.Errorf("header and rule misaligned:\n%s", out)
	}
	if tb.Len() != 2 {
		t.Errorf("Len = %d", tb.Len())
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("t", "x", "y")
	tb.AddRow(1, 2)
	tb.AddRow(3, 4)
	var sb strings.Builder
	tb.RenderCSV(&sb)
	want := "x,y\n1,2\n3,4\n"
	if sb.String() != want {
		t.Errorf("CSV = %q, want %q", sb.String(), want)
	}
}

func TestFloatFormatting(t *testing.T) {
	tb := NewTable("", "v")
	tb.AddRow(1.23456)
	var sb strings.Builder
	tb.RenderCSV(&sb)
	if !strings.Contains(sb.String(), "1.23") || strings.Contains(sb.String(), "1.2345") {
		t.Errorf("float should render with 2 decimals: %q", sb.String())
	}
}

// TestCSVEscaping pins the RFC 4180 behavior: cells carrying the CSV
// metacharacters — commas, double quotes, newlines — round-trip through a
// standard CSV reader unchanged.
func TestCSVEscaping(t *testing.T) {
	tb := NewTable("", "name", "note")
	tb.AddRow("a,b", `says "hi"`)
	tb.AddRow("line1\nline2", "plain")
	var sb strings.Builder
	tb.RenderCSV(&sb)

	records, err := csv.NewReader(strings.NewReader(sb.String())).ReadAll()
	if err != nil {
		t.Fatalf("rendered CSV does not parse: %v\n%s", err, sb.String())
	}
	want := [][]string{
		{"name", "note"},
		{"a,b", `says "hi"`},
		{"line1\nline2", "plain"},
	}
	if len(records) != len(want) {
		t.Fatalf("got %d records, want %d:\n%s", len(records), len(want), sb.String())
	}
	for i, rec := range records {
		for j, cell := range rec {
			if cell != want[i][j] {
				t.Errorf("record %d cell %d = %q, want %q", i, j, cell, want[i][j])
			}
		}
	}
	// The comma-carrying cell was actually quoted on the wire.
	if !strings.Contains(sb.String(), `"a,b"`) {
		t.Errorf("comma cell not quoted: %q", sb.String())
	}
}

// TestCSVEmpty pins the degenerate shapes: headers alone render as one
// record, and a table with neither headers nor rows writes nothing.
func TestCSVEmpty(t *testing.T) {
	tb := NewTable("", "only")
	var sb strings.Builder
	tb.RenderCSV(&sb)
	if sb.String() != "only\n" {
		t.Errorf("headers-only CSV = %q, want %q", sb.String(), "only\n")
	}

	bare := &Table{}
	sb.Reset()
	bare.RenderCSV(&sb)
	if sb.String() != "" {
		t.Errorf("empty table CSV = %q, want empty", sb.String())
	}
}

func TestEmptyTable(t *testing.T) {
	tb := NewTable("", "only")
	var sb strings.Builder
	tb.Render(&sb)
	if tb.Len() != 0 {
		t.Errorf("Len = %d", tb.Len())
	}
	if !strings.Contains(sb.String(), "only") {
		t.Errorf("headers must render even when empty: %q", sb.String())
	}
}
