package tz

import (
	"nochatter/internal/bits"
	"nochatter/internal/sim"
	"nochatter/internal/ues"
)

// NaiveSchedule is the ablation variant of the rendezvous schedule
// (experiment A1): one 2-slot block per transformed bit — explore on 1, wait
// on 0 — instead of the 4-slot complementary layout of Schedule.
//
// It looks equivalent but its meeting guarantee does not survive the
// delay-tolerance proof: at the first differing bit only the party holding
// the 1 explores, and a misaligned start can place that sweep outside the
// other party's waiting windows; codewords can differ in one direction only
// (e.g. 0001 vs 1101 differ only where the second holds the 1), so no
// role-reversed block is guaranteed. Empirically the naive layout still
// meets on small symmetric rings (the A1 ablation records this): the 4-slot
// layout is a proof-driven design choice whose measured cost is bounded by
// the 2x slot factor.
type NaiveSchedule struct {
	pattern string
	seq     *ues.Sequence
}

// NewNaive returns the naive 2-slot schedule for parameter lambda.
func NewNaive(lambda int, seq *ues.Sequence) *NaiveSchedule {
	return &NaiveSchedule{pattern: bits.Code(bits.Bin(lambda)), seq: seq}
}

// Run executes the naive schedule for exactly rounds rounds, cycling.
func (s *NaiveSchedule) Run(a *sim.API, rounds int) {
	e := s.seq.EffectiveLen()
	if e == 0 || len(s.pattern) == 0 {
		a.WaitRounds(rounds)
		return
	}
	// Block-wise, like Schedule.Run: a 0-bit block is one bulk wait the
	// engine can fast-forward; a 1-bit block is a per-round explore walk.
	block := 2 * e
	for t := 0; t < rounds; {
		bit := s.pattern[(t/block)%len(s.pattern)]
		n := block - t%block
		if n > rounds-t {
			n = rounds - t
		}
		if bit == '0' {
			a.WaitRounds(n)
		} else {
			s.seq.ExploPartial(a, n)
		}
		t += n
	}
}

// NaiveMeetBound mirrors MeetBound for the naive block length.
func NaiveMeetBound(seq *ues.Sequence, k int) int {
	return 2 * seq.EffectiveLen() * (2*k + 4)
}
