package tz

import (
	"testing"

	"nochatter/internal/graph"
	"nochatter/internal/sim"
	"nochatter/internal/ues"
)

// meetAt runs two schedules (naive or 4-slot) and returns the first
// co-location round, or -1.
func meetAt(t *testing.T, g *graph.Graph, seq *ues.Sequence, naive bool, l1, l2, d1, d2, horizon int) int {
	t.Helper()
	prog := func(lambda int) sim.Program {
		return func(a *sim.API) sim.Report {
			if naive {
				NewNaive(lambda, seq).Run(a, horizon)
			} else {
				New(lambda, seq).Run(a, horizon)
			}
			return sim.Report{}
		}
	}
	met := -1
	_, err := sim.Run(sim.Scenario{
		Graph: g,
		Agents: []sim.AgentSpec{
			{Label: 1, Start: 0, WakeRound: d1, Program: prog(l1)},
			{Label: 2, Start: g.N() / 2, WakeRound: d2, Program: prog(l2)},
		},
		OnRound: func(v sim.RoundView) {
			if met < 0 && v.Awake[0] && v.Awake[1] && v.Positions[0] == v.Positions[1] {
				met = v.Round
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return met
}

// TestAblationFourSlotContract is the A1 ablation, part 1: the 4-slot
// layout meets within MeetBound for every in-contract delay (both signs) —
// this is the property Algorithm 3's analysis consumes. The naive 2-slot
// layout has no such proof (at the first differing bit only the 1-holder
// explores, and a misaligned start can place that sweep outside the other's
// waiting windows); empirically it meets on small rings, which part 2
// records — the 4-slot structure is a proof-driven design choice, and the
// ablation verifies it costs no more than the 2x slot factor.
func TestAblationFourSlotContract(t *testing.T) {
	g := graph.Ring(4)
	seq := ues.Build(g)
	e := seq.EffectiveLen()
	for _, d := range []int{0, 1, e / 2, e} {
		for _, swap := range []bool{false, true} {
			d1, d2 := 0, d
			if swap {
				d1, d2 = d, 0
			}
			bound := MeetBound(seq, 2) + d
			got := meetAt(t, g, seq, false, 1, 3, d1, d2, bound+1)
			if got < 0 || got > bound {
				t.Errorf("4-slot layout delays (%d,%d): met=%d, bound=%d", d1, d2, got, bound)
			}
		}
	}
}

// TestAblationNaiveEmpiricallyMeets is part 2: on small rings the naive
// layout also meets (within its bound measured from the later start), so
// the 4-slot design buys the proof, not raw speed. If this ever regresses
// it is interesting, not wrong — it would exhibit the predicted failure.
func TestAblationNaiveEmpiricallyMeets(t *testing.T) {
	g := graph.Ring(6)
	seq := ues.Build(g)
	e := seq.EffectiveLen()
	misses := 0
	for _, pr := range [][2]int{{0, 1}, {1, 3}, {2, 5}} {
		for _, d := range []int{0, e / 2, e, 2 * e} {
			bound := NaiveMeetBound(seq, 4)
			met := meetAt(t, g, seq, true, pr[0], pr[1], 0, d, 40*bound)
			if met < 0 || met-d > bound {
				misses++
				t.Logf("naive layout missed: pair %v delay %d met %d bound %d", pr, d, met, bound)
			}
		}
	}
	if misses > 0 {
		t.Logf("naive layout missed %d settings — the predicted failure mode exists", misses)
	}
}

// TestAblationMeetTimesComparable: when both layouts meet, the 4-slot one
// is not dramatically slower — robustness is not bought with asymptotics.
func TestAblationMeetTimesComparable(t *testing.T) {
	g := graph.Ring(6)
	seq := ues.Build(g)
	for _, pr := range [][2]int{{0, 1}, {2, 5}, {1, 3}} {
		naive := meetAt(t, g, seq, true, pr[0], pr[1], 0, 0, 100*NaiveMeetBound(seq, 4))
		slotted := meetAt(t, g, seq, false, pr[0], pr[1], 0, 0, 100*MeetBound(seq, 4))
		if naive < 0 || slotted < 0 {
			t.Fatalf("pair %v: naive=%d slotted=%d (no meeting)", pr, naive, slotted)
		}
		if slotted > 4*naive+4*seq.EffectiveLen() {
			t.Errorf("pair %v: 4-slot %d rounds vs naive %d — worse than the 2x slot factor explains",
				pr, slotted, naive)
		}
	}
}
