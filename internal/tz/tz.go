// Package tz implements the TZ(L) rendezvous procedure used as a black box
// by Algorithm 3 of the paper (there instantiated with the Ta-Shma–Zwick
// construction).
//
// Contract required by the paper (and delivered here): if two agents (or two
// cohesive groups) execute TZ with distinct parameters L1 != L2, starting at
// most T(EXPLO)/2 rounds apart, and both keep executing, then they are
// co-located in some round within MeetBound(seq, k) rounds of the later
// start, where k bounds the bit length of the smaller parameter.
//
// Construction (DESIGN.md, substitution 2): the parameter is transformed with
// the prefix-free code of package bits, so two distinct parameters differ at
// some position j no later than the end of the shorter transformed string.
// Each transformed bit spans one block of 4 slots, each slot lasting E rounds
// (E = effective length of the run's exploration sequence):
//
//	bit 1: [explore-effective, explore-backtrack, wait, wait]
//	bit 0: [wait, wait, explore-effective, explore-backtrack]
//
// At the first differing position, one party's effective cover (which visits
// every node) falls entirely inside the other party's 2E-round waiting
// window for any start delay up to E rounds, so they meet. The pattern
// repeats cyclically, so the procedure can run for any number of rounds.
package tz

import (
	"nochatter/internal/bits"
	"nochatter/internal/sim"
	"nochatter/internal/ues"
)

// Schedule is the movement schedule TZ(λ) for one parameter value.
type Schedule struct {
	pattern string // transformed parameter: Code(Bin(λ))
	seq     *ues.Sequence
}

// New returns the schedule for parameter lambda (λ >= 0; the paper's
// Algorithm 3 calls TZ(0) when no label was learned).
func New(lambda int, seq *ues.Sequence) *Schedule {
	return &Schedule{pattern: bits.Code(bits.Bin(lambda)), seq: seq}
}

// Pattern returns the transformed bit pattern driving the schedule.
func (s *Schedule) Pattern() string { return s.pattern }

// BlockLen returns the duration of one transformed bit: 4 slots of E rounds.
func (s *Schedule) BlockLen() int { return 4 * s.seq.EffectiveLen() }

// PassLen returns the duration of one full pass over the pattern.
func (s *Schedule) PassLen() int { return s.BlockLen() * len(s.pattern) }

// Run executes the schedule for exactly the given number of rounds, cycling
// over the pattern as needed. The agent may end anywhere in the graph; the
// paper's Algorithm 3 follows a TZ run with a full EXPLO, which works from
// any node. Interruption (via sim.RunInterruptible wrapping the caller) may
// abandon the walk mid-flight, which is the intended semantics.
func (s *Schedule) Run(a *sim.API, rounds int) {
	e := s.seq.EffectiveLen()
	if e == 0 || len(s.pattern) == 0 {
		a.WaitRounds(rounds)
		return
	}
	// The schedule is processed half-block by half-block: each 2E-round
	// waiting window is ONE bulk wait instruction, so the engine sees the
	// idle stretch and can fast-forward it; the complementary explore window
	// is per-round by nature (one move per round). Truncation by `rounds`
	// can cut the final window short, matching the per-round semantics.
	block := 4 * e
	for t := 0; t < rounds; {
		bit := s.pattern[(t/block)%len(s.pattern)]
		phase := t % block
		segEnd := 2 * e // end of the current half-block within the block
		if phase >= 2*e {
			segEnd = block
		}
		n := segEnd - phase
		if n > rounds-t {
			n = rounds - t
		}
		// bit 1 explores in the first half-block and waits in the second;
		// bit 0 is the complement. Windows are always entered at their
		// start: t advances in whole (possibly truncated) windows from 0.
		if exploring := (bit == '1') == (phase < 2*e); !exploring {
			a.WaitRounds(n)
		} else {
			s.seq.ExploPartial(a, n)
		}
		t += n
	}
}

// MeetBound returns P(N, k): an upper bound on the number of rounds, counted
// from the later of the two starts, within which two schedules with distinct
// parameters of bit length at most k must have met, provided the start delay
// is at most E rounds. The transformed pattern of a k-bit parameter has
// 2k + 2 bits; meeting happens within the first differing block, and one
// extra block absorbs the start delay.
func MeetBound(seq *ues.Sequence, k int) int {
	return 4 * seq.EffectiveLen() * (2*k + 4)
}
