package tz

import (
	"math/rand"
	"testing"
	"testing/quick"

	"nochatter/internal/graph"
	"nochatter/internal/sim"
	"nochatter/internal/ues"
)

// meetWithin runs two agents with TZ parameters l1, l2 from the given starts,
// the second delayed by delay rounds, and returns the first global round in
// which they are co-located, or -1 if they never are within horizon.
func meetWithin(t *testing.T, g *graph.Graph, seq *ues.Sequence, l1, l2, start1, start2, delay, horizon int) int {
	t.Helper()
	prog := func(lambda int) sim.Program {
		return func(a *sim.API) sim.Report {
			New(lambda, seq).Run(a, horizon)
			return sim.Report{}
		}
	}
	met := -1
	_, err := sim.Run(sim.Scenario{
		Graph: g,
		Agents: []sim.AgentSpec{
			{Label: 1, Start: start1, WakeRound: 0, Program: prog(l1)},
			{Label: 2, Start: start2, WakeRound: delay, Program: prog(l2)},
		},
		OnRound: func(v sim.RoundView) {
			if met < 0 && v.Awake[0] && v.Awake[1] && v.Positions[0] == v.Positions[1] {
				met = v.Round
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return met
}

func TestDistinctParamsMeet(t *testing.T) {
	graphs := []*graph.Graph{
		graph.Ring(6), graph.Path(5), graph.Star(6),
		graph.Grid(3, 3), graph.GNP(8, 0.35, 9),
	}
	pairs := [][2]int{{0, 1}, {1, 2}, {2, 5}, {3, 12}, {7, 8}, {1, 1023}}
	for _, g := range graphs {
		seq := ues.Build(g)
		e := seq.EffectiveLen()
		for _, pr := range pairs {
			for _, delay := range []int{0, 1, e / 2, e} {
				k := bitLen(max(pr[0], pr[1]))
				bound := MeetBound(seq, k) + delay
				met := meetWithin(t, g, seq, pr[0], pr[1], 0, g.N()-1, delay, bound+1)
				if met < 0 {
					t.Errorf("%s: λ=%v delay=%d: no meeting within %d rounds",
						g.Name(), pr, delay, bound)
				}
			}
		}
	}
}

// Property: random distinct parameters with random tolerable delay meet
// within MeetBound on a random graph.
func TestDistinctParamsMeetProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	f := func() bool {
		n := 4 + rng.Intn(8)
		g := graph.GNP(n, 0.3+rng.Float64()*0.4, rng.Int63())
		seq := ues.Build(g)
		l1 := rng.Intn(64)
		l2 := rng.Intn(64)
		for l2 == l1 {
			l2 = rng.Intn(64)
		}
		delay := rng.Intn(seq.EffectiveLen() + 1)
		bound := MeetBound(seq, bitLen(max(l1, l2))) + delay
		s1, s2 := rng.Intn(n), rng.Intn(n)
		for s2 == s1 {
			s2 = rng.Intn(n)
		}
		return meetWithin(t, g, seq, l1, l2, s1, s2, delay, bound+1) >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestSameParameterCohesion(t *testing.T) {
	// Two co-located agents with the same λ must stay together for the whole
	// run (same deterministic schedule) — this is what keeps groups cohesive
	// inside Algorithm 3.
	g := graph.Grid(3, 3)
	seq := ues.Build(g)
	horizon := 3 * MeetBound(seq, 4)
	prog := func(a *sim.API) sim.Report {
		if a.Label() == 2 {
			a.TakePort(0) // join agent 1's node first
		} else {
			a.Wait()
		}
		New(5, seq).Run(a, horizon)
		return sim.Report{}
	}
	to, _ := g.Traverse(0, 0)
	separated := false
	_, err := sim.Run(sim.Scenario{
		Graph: g,
		Agents: []sim.AgentSpec{
			{Label: 1, Start: to, WakeRound: 0, Program: prog},
			{Label: 2, Start: 0, WakeRound: 0, Program: prog},
		},
		OnRound: func(v sim.RoundView) {
			if v.Round >= 1 && v.Positions[0] != v.Positions[1] {
				separated = true
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if separated {
		t.Error("same-parameter co-located agents must never separate")
	}
}

func TestRunDurationExact(t *testing.T) {
	g := graph.Ring(5)
	seq := ues.Build(g)
	for _, rounds := range []int{0, 1, seq.EffectiveLen(), 4*seq.EffectiveLen() + 3, MeetBound(seq, 3)} {
		var used int
		prog := func(a *sim.API) sim.Report {
			New(6, seq).Run(a, rounds)
			used = a.LocalRound()
			return sim.Report{}
		}
		_, err := sim.Run(sim.Scenario{
			Graph:  g,
			Agents: []sim.AgentSpec{{Label: 1, Start: 0, WakeRound: 0, Program: prog}},
		})
		if err != nil {
			t.Fatal(err)
		}
		if used != rounds {
			t.Errorf("Run(%d) consumed %d rounds", rounds, used)
		}
	}
}

func TestPatternShape(t *testing.T) {
	g := graph.Ring(4)
	seq := ues.Build(g)
	s := New(5, seq) // Bin(5)=101, Code=11001101
	if s.Pattern() != "11001101" {
		t.Errorf("pattern = %q", s.Pattern())
	}
	if s.BlockLen() != 4*seq.EffectiveLen() {
		t.Errorf("block len = %d", s.BlockLen())
	}
	if s.PassLen() != s.BlockLen()*8 {
		t.Errorf("pass len = %d", s.PassLen())
	}
	if New(0, seq).Pattern() != "0001" {
		t.Errorf("λ=0 pattern = %q", New(0, seq).Pattern())
	}
}

func bitLen(x int) int {
	n := 0
	for x > 0 {
		n++
		x >>= 1
	}
	if n == 0 {
		return 1
	}
	return n
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
