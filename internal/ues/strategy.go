package ues

import "nochatter/internal/graph"

// Strategy selects the sequence-construction policy. All strategies produce
// sequences with the same contract (cover from every start); they differ in
// sequence LENGTH, which multiplies into every duration of the gathering
// algorithms — the A2 ablation measures this.
type Strategy int

const (
	// Hybrid (the default used by Build): greedy coverage steps while they
	// make progress, BFS-directed steps otherwise.
	Hybrid Strategy = iota
	// DirectedOnly always steers the first uncovered walker via BFS,
	// ignoring what the step does for other walkers.
	DirectedOnly
	// GreedyRandom uses greedy coverage steps and a deterministic
	// pseudo-random offset when greedy stalls (no BFS guidance).
	GreedyRandom
)

// String implements fmt.Stringer for experiment tables.
func (s Strategy) String() string {
	switch s {
	case Hybrid:
		return "hybrid"
	case DirectedOnly:
		return "directed-only"
	case GreedyRandom:
		return "greedy+random"
	default:
		return "unknown"
	}
}

// BuildWith constructs a covering sequence for g using the given strategy.
// BuildWith(g, Hybrid) is identical to Build(g).
func BuildWith(g *graph.Graph, strategy Strategy) *Sequence {
	n := g.N()
	if n == 1 {
		return &Sequence{}
	}
	walkers := make([]*walker, n)
	for v := 0; v < n; v++ {
		w := &walker{node: v, entry: 0, covered: make([]bool, n)}
		w.visit(v)
		walkers[v] = w
	}
	maxDeg := g.MaxDegree()
	var offsets []int
	done := func() bool {
		for _, w := range walkers {
			if w.nCov < n {
				return false
			}
		}
		return true
	}
	rng := uint64(0x9e3779b97f4a7c15) // deterministic splitmix state
	nextRand := func() int {
		rng += 0x9e3779b97f4a7c15
		z := rng
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return int((z ^ (z >> 31)) % uint64(maxDeg))
	}
	// The random strategy has no termination proof; use a generous cap and
	// fall back to directed steps beyond it so the contract always holds.
	bound := 64*n*n*(g.Diameter()+1) + 1024
	for step := 0; !done(); step++ {
		var pick int
		switch {
		case strategy == DirectedOnly:
			pick = directedOffset(g, walkers)
		case strategy == GreedyRandom && step <= bound:
			pick = greedyOffset(g, walkers, maxDeg)
			if pick < 0 {
				pick = nextRand()
			}
		case strategy == GreedyRandom:
			pick = directedOffset(g, walkers) // safety net beyond the cap
		default: // Hybrid
			pick = greedyOffset(g, walkers, maxDeg)
			if pick < 0 {
				pick = directedOffset(g, walkers)
			}
		}
		offsets = append(offsets, pick)
		for _, w := range walkers {
			w.apply(g, pick)
		}
		if step > 4*bound {
			panic("ues: BuildWith exceeded hard bound")
		}
	}
	return &Sequence{offsets: offsets}
}

// greedyOffset returns the offset uncovering the most nodes across all
// walkers, or -1 if no offset makes progress.
func greedyOffset(g *graph.Graph, walkers []*walker, maxDeg int) int {
	best, bestGain := -1, 0
	for x := 0; x < maxDeg; x++ {
		gain := 0
		for _, w := range walkers {
			d := g.Degree(w.node)
			to, _ := g.Traverse(w.node, (w.entry+x)%d)
			if !w.covered[to] {
				gain++
			}
		}
		if gain > bestGain {
			best, bestGain = x, gain
		}
	}
	return best
}
