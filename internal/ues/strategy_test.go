package ues

import (
	"testing"

	"nochatter/internal/graph"
)

func TestAllStrategiesSatisfyContract(t *testing.T) {
	graphs := []*graph.Graph{
		graph.TwoNodes(), graph.Ring(7), graph.Path(6), graph.Star(6),
		graph.Grid(3, 3), graph.Hypercube(3), graph.GNP(10, 0.3, 4),
		graph.Lollipop(4, 3), graph.Barbell(3, 2),
	}
	for _, g := range graphs {
		for _, s := range []Strategy{Hybrid, DirectedOnly, GreedyRandom} {
			seq := BuildWith(g, s)
			if !seq.CoversFromEveryStart(g) {
				t.Errorf("%s/%v: contract violated", g.Name(), s)
			}
		}
	}
}

func TestStrategiesDeterministic(t *testing.T) {
	g := graph.GNP(9, 0.4, 6)
	for _, s := range []Strategy{Hybrid, DirectedOnly, GreedyRandom} {
		a, b := BuildWith(g, s), BuildWith(g, s)
		ao, bo := a.Offsets(), b.Offsets()
		if len(ao) != len(bo) {
			t.Fatalf("%v: nondeterministic length", s)
		}
		for i := range ao {
			if ao[i] != bo[i] {
				t.Fatalf("%v: nondeterministic offsets", s)
			}
		}
	}
}

// TestHybridNotWorseThanDirected is the A2 ablation's direction: hybrid
// sequences should be no longer than directed-only on most graphs (they
// exploit multi-walker progress); allow slack for ties and tiny graphs.
func TestHybridNotWorseThanDirected(t *testing.T) {
	graphs := []*graph.Graph{
		graph.Ring(8), graph.Grid(3, 3), graph.Star(8),
		graph.GNP(12, 0.3, 9), graph.Hypercube(3),
	}
	hybridWins := 0
	for _, g := range graphs {
		h := BuildWith(g, Hybrid).EffectiveLen()
		d := BuildWith(g, DirectedOnly).EffectiveLen()
		t.Logf("%s: hybrid=%d directed=%d", g.Name(), h, d)
		if h <= d {
			hybridWins++
		}
	}
	if hybridWins < len(graphs)-1 {
		t.Errorf("hybrid longer than directed-only on %d/%d graphs", len(graphs)-hybridWins, len(graphs))
	}
}

func TestStrategyString(t *testing.T) {
	if Hybrid.String() != "hybrid" || DirectedOnly.String() != "directed-only" ||
		GreedyRandom.String() != "greedy+random" || Strategy(99).String() != "unknown" {
		t.Error("Strategy.String labels wrong")
	}
}
