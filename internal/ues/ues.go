// Package ues implements the EXPLO(N) procedure of the paper: a universal
// exploration sequence walk with an effective half (visits every node of the
// graph from any start) and a backtrack half (retraces the effective half in
// reverse, returning to the start).
//
// The paper instantiates EXPLO with Reingold's log-space universal
// exploration sequences (UXS). Constructing genuine UXS is out of scope for
// any practical system, so this package substitutes a per-run sequence with
// the identical contract (see DESIGN.md, substitution 1):
//
//   - one fixed offset sequence shared by all agents of the run,
//   - following it from ANY start node of the run's graph visits all nodes,
//   - the walk obeys the UXS rule q = (p + x_i) mod d,
//   - total duration T(EXPLO) = 2·E rounds is a public constant of the run.
//
// Build proves cover-from-every-start by exhaustive simulation, so the
// contract is checked, not assumed.
package ues

import (
	"nochatter/internal/graph"
	"nochatter/internal/sim"
)

// Sequence is a universal exploration offset sequence for one run.
type Sequence struct {
	offsets []int
}

// EffectiveLen returns E, the number of moves of the effective half.
func (s *Sequence) EffectiveLen() int { return len(s.offsets) }

// Duration returns T(EXPLO) = 2·E, the total number of rounds of one full
// execution (effective + backtrack).
func (s *Sequence) Duration() int { return 2 * len(s.offsets) }

// Offsets returns a copy of the raw offsets (for inspection and tests).
func (s *Sequence) Offsets() []int {
	out := make([]int, len(s.offsets))
	copy(out, s.offsets)
	return out
}

// walker tracks a simulated walk during construction.
type walker struct {
	node    int
	entry   int // entry port of current node (0 at start, per the walk rule)
	covered []bool
	nCov    int
}

func (w *walker) visit(v int) {
	if !w.covered[v] {
		w.covered[v] = true
		w.nCov++
	}
}

func (w *walker) apply(g *graph.Graph, offset int) {
	d := g.Degree(w.node)
	q := (w.entry + offset) % d
	to, entry := g.Traverse(w.node, q)
	w.node = to
	w.entry = entry
	w.visit(to)
}

// Build constructs a sequence that covers g from every start node. The
// construction is deterministic: a greedy coverage step when some offset
// uncovers new nodes, otherwise a BFS-directed step for the first walker
// that still has uncovered nodes (the Hybrid strategy; see BuildWith for
// the A2 ablation alternatives).
func Build(g *graph.Graph) *Sequence {
	return BuildWith(g, Hybrid)
}

// directedOffset picks the offset that moves the first incomplete walker one
// BFS step toward its nearest uncovered node.
func directedOffset(g *graph.Graph, walkers []*walker) int {
	var w *walker
	for _, cand := range walkers {
		if cand.nCov < len(cand.covered) {
			w = cand
			break
		}
	}
	if w == nil {
		return 0
	}
	// BFS from w.node to the nearest uncovered node; take the first port of a
	// shortest path toward it.
	dist := g.Distances(w.node)
	target, bestDist := -1, -1
	for v, cov := range w.covered {
		if !cov && (bestDist < 0 || dist[v] < bestDist || (dist[v] == bestDist && v < target)) {
			target, bestDist = v, dist[v]
		}
	}
	distToTarget := g.Distances(target)
	d := g.Degree(w.node)
	for q := 0; q < d; q++ {
		to, _ := g.Traverse(w.node, q)
		if distToTarget[to] == distToTarget[w.node]-1 {
			return ((q-w.entry)%d + d) % d
		}
	}
	return 0
}

// CoversFromEveryStart verifies the sequence contract on g by simulation.
func (s *Sequence) CoversFromEveryStart(g *graph.Graph) bool {
	for v := 0; v < g.N(); v++ {
		w := &walker{node: v, entry: 0, covered: make([]bool, g.N())}
		w.visit(v)
		for _, x := range s.offsets {
			w.apply(g, x)
		}
		if w.nCov < g.N() {
			return false
		}
	}
	return true
}

// Walker executes one EXPLO run for a live agent, one move per call, so
// callers can interleave CurCard observations and interruption checks.
type Walker struct {
	seq     *Sequence
	a       *sim.API
	entries []int // entry ports recorded during the effective half
	i       int   // next effective offset index
	entry   int   // entry port state per the walk rule
	back    int   // backtrack progress
}

// NewWalker starts a fresh EXPLO execution for agent a at its current node.
func (s *Sequence) NewWalker(a *sim.API) *Walker {
	return &Walker{seq: s, a: a, entries: make([]int, 0, len(s.offsets))}
}

// StepEffective performs the next effective move; it returns false once the
// effective half is complete (and performs nothing).
func (w *Walker) StepEffective() bool {
	if w.i >= len(w.seq.offsets) {
		return false
	}
	d := w.a.Degree()
	q := (w.entry + w.seq.offsets[w.i]) % d
	w.entry = w.a.TakePort(q)
	w.entries = append(w.entries, w.entry)
	w.i++
	return true
}

// StepBacktrack performs the next backtrack move; it returns false once the
// agent is back at its start node.
func (w *Walker) StepBacktrack() bool {
	if w.back >= len(w.entries) {
		return false
	}
	p := w.entries[len(w.entries)-1-w.back]
	w.a.TakePort(p)
	w.back++
	return true
}

// Explo runs a full EXPLO (effective + backtrack), consuming exactly
// Duration() rounds, and leaves the agent where it started. Both halves are
// engine-side bulk walks (sim.WalkOffsets / sim.WalkPorts): the engine
// computes every port itself, so the whole execution costs two agent
// handoffs instead of 2·E.
func (s *Sequence) Explo(a *sim.API) {
	entries, _ := a.WalkOffsets(s.offsets)
	a.WalkPorts(reversed(entries))
}

// ExploMinCard runs a full EXPLO and returns the smallest CurCard observed
// after each of the 2·E moves (the paper's "smallest value reached by
// CurCard during the latest execution of EXPLO").
func (s *Sequence) ExploMinCard(a *sim.API) int {
	min := a.CurCard()
	entries, m := a.WalkOffsets(s.offsets)
	if m < min {
		min = m
	}
	if _, m = a.WalkPorts(reversed(entries)); m < min {
		min = m
	}
	return min
}

// ExploPartial runs only the first n rounds of an EXPLO (n <= Duration()):
// the truncated prefix of the effective half followed by the truncated
// prefix of the backtrack. Rendezvous schedules use it for explore windows
// cut short by their round budget.
func (s *Sequence) ExploPartial(a *sim.API, n int) {
	e := len(s.offsets)
	eff := n
	if eff > e {
		eff = e
	}
	entries, _ := a.WalkOffsets(s.offsets[:eff])
	if back := n - e; back > 0 {
		a.WalkPorts(reversed(entries)[:back])
	}
}

// reversed returns a new slice with the elements in reverse order.
func reversed(xs []int) []int {
	out := make([]int, len(xs))
	for i, x := range xs {
		out[len(xs)-1-i] = x
	}
	return out
}
