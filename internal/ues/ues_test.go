package ues

import (
	"math/rand"
	"testing"
	"testing/quick"

	"nochatter/internal/graph"
	"nochatter/internal/sim"
)

func families(t *testing.T) []*graph.Graph {
	t.Helper()
	return []*graph.Graph{
		graph.TwoNodes(),
		graph.Ring(3), graph.Ring(8), graph.Ring(17),
		graph.Path(2), graph.Path(5), graph.Path(12),
		graph.Complete(4), graph.Complete(7),
		graph.Star(5), graph.Star(11),
		graph.Grid(3, 3), graph.Grid(2, 6),
		graph.Torus(3, 4),
		graph.Hypercube(3), graph.Hypercube(4),
		graph.RandomTree(10, 3), graph.RandomTree(15, 8),
		graph.GNP(10, 0.3, 1), graph.GNP(14, 0.25, 2),
		graph.Barbell(3, 2), graph.Lollipop(4, 5),
	}
}

func TestBuildCoversEveryStart(t *testing.T) {
	for _, g := range families(t) {
		t.Run(g.Name(), func(t *testing.T) {
			s := Build(g)
			if !s.CoversFromEveryStart(g) {
				t.Fatalf("sequence does not cover %s from every start", g.Name())
			}
		})
	}
}

// Property: Build covers random graphs from every start node.
func TestBuildCoversRandomGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := func() bool {
		n := 2 + rng.Intn(14)
		g := graph.GNP(n, 0.15+rng.Float64()*0.6, rng.Int63())
		return Build(g).CoversFromEveryStart(g)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestDurationAndDeterminism(t *testing.T) {
	g := graph.Ring(9)
	s1, s2 := Build(g), Build(g)
	if s1.Duration() != 2*s1.EffectiveLen() {
		t.Errorf("Duration = %d, want 2*%d", s1.Duration(), s1.EffectiveLen())
	}
	o1, o2 := s1.Offsets(), s2.Offsets()
	if len(o1) != len(o2) {
		t.Fatalf("nondeterministic length %d vs %d", len(o1), len(o2))
	}
	for i := range o1 {
		if o1[i] != o2[i] {
			t.Fatalf("nondeterministic offset at %d", i)
		}
	}
}

// runOne executes prog for a single agent and fails on simulator error.
func runOne(t *testing.T, g *graph.Graph, start int, prog sim.Program) *sim.RunResult {
	t.Helper()
	res, err := sim.Run(sim.Scenario{
		Graph:  g,
		Agents: []sim.AgentSpec{{Label: 1, Start: start, WakeRound: 0, Program: prog}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestExploReturnsToStartFromEveryNode(t *testing.T) {
	for _, g := range []*graph.Graph{graph.Ring(7), graph.Grid(3, 3), graph.GNP(9, 0.4, 5)} {
		s := Build(g)
		for start := 0; start < g.N(); start++ {
			var rounds int
			prog := func(a *sim.API) sim.Report {
				s.Explo(a)
				rounds = a.LocalRound()
				return sim.Report{}
			}
			res := runOne(t, g, start, prog)
			if res.Agents[0].FinalNode != start {
				t.Fatalf("%s: EXPLO from %d ended at %d", g.Name(), start, res.Agents[0].FinalNode)
			}
			if rounds != s.Duration() {
				t.Fatalf("%s: EXPLO took %d rounds, want %d", g.Name(), rounds, s.Duration())
			}
		}
	}
}

func TestMirrorSymmetry(t *testing.T) {
	// Position at round E+j must equal position at round E-j (backtrack
	// mirrors the effective half); several proofs rely on this.
	g := graph.GNP(8, 0.5, 3)
	s := Build(g)
	var positions []int
	prog := func(a *sim.API) sim.Report {
		s.Explo(a)
		return sim.Report{}
	}
	_, err := sim.Run(sim.Scenario{
		Graph:  g,
		Agents: []sim.AgentSpec{{Label: 1, Start: 2, WakeRound: 0, Program: prog}},
		OnRound: func(v sim.RoundView) {
			positions = append(positions, v.Positions[0])
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	e := s.EffectiveLen()
	for j := 0; j <= e; j++ {
		if positions[e+j] != positions[e-j] {
			t.Fatalf("mirror violated at j=%d: %d vs %d", j, positions[e+j], positions[e-j])
		}
	}
}

func TestCoLocatedAgentsStayTogether(t *testing.T) {
	// Two agents starting EXPLO together at the same round from the same node
	// must remain co-located throughout (same deterministic walk).
	g := graph.Grid(3, 3)
	s := Build(g)
	// Start two agents at distinct nodes, walk one onto the other, then run
	// EXPLO simultaneously.
	var trace [][2]int
	walkThenExplo := func(a *sim.API) sim.Report {
		if a.Label() == 2 {
			a.TakePort(0) // move to a neighbor; agent 1 starts there
		} else {
			a.Wait()
		}
		s.Explo(a)
		return sim.Report{}
	}
	// Choose starts so that node(start2 via port 0) == start1.
	to, _ := g.Traverse(0, 0)
	_, err := sim.Run(sim.Scenario{
		Graph: g,
		Agents: []sim.AgentSpec{
			{Label: 1, Start: to, WakeRound: 0, Program: walkThenExplo},
			{Label: 2, Start: 0, WakeRound: 0, Program: walkThenExplo},
		},
		OnRound: func(v sim.RoundView) {
			trace = append(trace, [2]int{v.Positions[0], v.Positions[1]})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for r := 1; r < len(trace); r++ { // from round 1 they are co-located
		if trace[r][0] != trace[r][1] {
			t.Fatalf("agents separated at round %d: %v", r, trace[r])
		}
	}
}

func TestExploMinCard(t *testing.T) {
	// One agent EXPLOs while another waits at the start node: the explorer's
	// min CurCard must be 1 (alone somewhere mid-walk), and a waiting pair
	// observed by a third co-located waiter stays 2.
	g := graph.Ring(5)
	s := Build(g)
	var minSeen int
	explorer := func(a *sim.API) sim.Report {
		minSeen = s.ExploMinCard(a)
		return sim.Report{}
	}
	waiter := func(a *sim.API) sim.Report {
		a.WaitRounds(s.Duration())
		return sim.Report{}
	}
	_, err := sim.Run(sim.Scenario{
		Graph: g,
		Agents: []sim.AgentSpec{
			{Label: 1, Start: 0, WakeRound: 0, Program: explorer},
			{Label: 2, Start: 1, WakeRound: 0, Program: waiter},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if minSeen != 1 {
		t.Errorf("explorer min CurCard = %d, want 1", minSeen)
	}
}

func TestSingleNodeGraphSequence(t *testing.T) {
	// A 1-node graph is below the model's minimum but Build must not loop.
	// (Engine requires n>=2 via distinct starts; only Build is exercised.)
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("Build panicked: %v", r)
		}
	}()
	b := graph.NewBuilder("one", 1)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if s := Build(g); s.EffectiveLen() != 0 {
		t.Errorf("1-node sequence should be empty, got %d", s.EffectiveLen())
	}
}
