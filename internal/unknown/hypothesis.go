package unknown

import (
	"nochatter/internal/config"
	"nochatter/internal/est"
	"nochatter/internal/sim"
)

// runner executes hypotheses for one agent, recording every entry port of a
// hypothesis' first part so the second part can walk back (Algorithm 6,
// lines 16-21).
type runner struct {
	a       *sim.API
	sched   *Schedule
	entries []int
}

// take moves through port p and records the entry port at the destination.
func (r *runner) take(p int) int {
	e := r.a.TakePort(p)
	r.entries = append(r.entries, e)
	return e
}

// cardTracker maintains, for an agent that has not moved since the tracker
// was last reset, the current CurCard value and the number of consecutive
// rounds (including the current one) it has remained unchanged. Because all
// agents waiting at one node observe the same CurCard history, trackers give
// them a COMMON clock: "Z stable rounds after the latest change" completes
// in the same round for everyone present, which is how MoveToCentralNode
// synchronizes the group (see the deviation note on moveToCentralNode).
type cardTracker struct {
	last   int
	stable int
}

func newCardTracker(a *sim.API) cardTracker {
	return cardTracker{last: a.CurCard(), stable: 1}
}

// observe processes the current round's CurCard.
func (t *cardTracker) observe(a *sim.API) {
	if c := a.CurCard(); c != t.last {
		t.last, t.stable = c, 1
	} else {
		t.stable++
	}
}

// waitOnce submits ONE engine-visible bulk wait of at most max rounds that
// is cut short only when CurCard moves, and folds the outcome into the
// tracker — after every round the tracker state is identical to a
// Wait/observe loop, but unchanged stretches cost nothing and can be
// fast-forwarded.
func (t *cardTracker) waitOnce(a *sim.API, max int) (waited int, fired bool) {
	waited, fired = a.WaitUntilFor(sim.CardChanged(), max)
	if fired {
		t.last, t.stable = a.CurCard(), 1
	} else {
		t.stable += waited
	}
	return waited, fired
}

// waitTracked waits for exactly `rounds` rounds while keeping the tracker's
// shared CurCard clock up to date.
func (t *cardTracker) waitTracked(a *sim.API, rounds int) {
	for rounds > 0 {
		w, _ := t.waitOnce(a, rounds)
		rounds -= w
	}
}

// hypothesis is Algorithm 6: the preprocessing part (ball traversal + wait),
// the main part (the four checks), and on failure the slowed return walk
// plus padding to exactly T_h rounds.
func (r *runner) hypothesis(h int) bool {
	d := r.sched.Dim(h)
	cfg := r.sched.Config(h)
	r.entries = r.entries[:0]
	start := r.a.LocalRound()

	ok := r.ballTraversal(d)
	if ok {
		// The tracker starts the round the sweep ends — from here the agent
		// sits still through the padding and the line-4 wait, so an agent
		// whose start IS the central node shares its CurCard history with
		// every later arrival.
		tr := newCardTracker(r.a)
		tr.waitTracked(r.a, d.TBall-(r.a.LocalRound()-start)) // pad traversal to TBall
		tr.waitTracked(r.a, d.S)                              // line 4 of Algorithm 6: wait S_h
		ok = r.moveToCentralNode(cfg, d, tr) &&
			r.starCheck(cfg) &&
			r.ensureCleanExploration(cfg, d) &&
			r.graphSizeCheck(cfg, d)
		if ok {
			return true
		}
	}
	// Second part: retrace every entrance of the first part in reverse, one
	// slow move at a time, then pad the phase to exactly T_h rounds.
	for i := len(r.entries) - 1; i >= 0; i-- {
		r.a.WaitRounds(d.Slow)
		r.a.TakePort(r.entries[i])
	}
	r.a.WaitRounds(d.T - (r.a.LocalRound() - start))
	return false
}

// ballTraversal is Algorithm 7: sweep all port paths of length R(h) over the
// alphabet {0..n_h-2} with slow moves, returning false as soon as a node of
// degree >= n_h is seen. On a true return the agent is back at its start and
// has visited every node within distance R(h) — with R(h) >= diameter
// (invariant I1), the whole graph.
//
// Deviation from the paper's Algorithm 7 (documented in DESIGN.md): a
// successful traversal is padded by the CALLER to exactly TBall rounds. The
// paper's unpadded version makes the traversal's duration depend on the
// start node, which desynchronizes agents of a correct hypothesis by more
// than MoveToCentralNode's waits can absorb. Padding to the public constant
// — the same device the paper itself uses for phases (T_h) and EST+ —
// removes the skew at no semantic cost.
func (r *runner) ballTraversal(d Dims) bool {
	alpha := d.N - 1
	if alpha < 1 {
		alpha = 1
	}
	path := make([]int, d.Radius)
	entries := make([]int, 0, d.Radius)
	for {
		entries = entries[:0]
		for i := 0; i < d.Radius; i++ {
			if r.a.Degree() >= d.N {
				return false
			}
			if path[i] >= r.a.Degree() {
				break // "there is no port x[i]"
			}
			r.a.WaitRounds(d.Slow)
			entries = append(entries, r.take(path[i]))
		}
		for i := len(entries) - 1; i >= 0; i-- {
			r.a.WaitRounds(d.Slow)
			r.take(entries[i])
		}
		if !nextWord(path, alpha) {
			return true
		}
	}
}

// moveToCentralNode is Algorithm 8: follow path_h(own label) toward the
// central node of φ_h, then wait for the other k_h - 1 hypothesized agents.
//
// Deviation from the paper's Algorithm 8 (documented in DESIGN.md): the
// paper's two fixed waits let agents of a correct hypothesis finish MTCN in
// different rounds when their ball traversals take different times or the
// central agent's body completes the count while it is still preprocessing;
// StarCheck then cannot start synchronized. Instead, the group synchronizes
// on an event all of its members observe identically: the wait succeeds
// exactly Z = S_h + n_h rounds after the LAST change of CurCard, with the
// cardinality equal to k_h. Since every agent present at the central node
// sees the same CurCard history (the tracker spans the line-4 wait for the
// agent already sitting there), all members complete the wait in the same
// round — the paper's own stabilization device from Algorithm 3, line 16.
func (r *runner) moveToCentralNode(cfg *config.Configuration, d Dims, tr cardTracker) bool {
	p, ok := cfg.PathToCentral(r.a.Label())
	if !ok {
		return false // my label does not occur in φ_h
	}
	for _, port := range p {
		if port >= r.a.Degree() {
			return false // "there is no port p[i]"
		}
		r.take(port)
		tr = newCardTracker(r.a) // moving resets the shared-history clock
	}
	z := d.S + d.N
	timeout := 2*z + 4
	// Event-driven form of "check, wait one round, observe" × timeout: the
	// success predicate can only flip when CurCard changes (resetting the
	// clock) or when the stability counter reaches z with the cardinality
	// already at k_h — both engine-predictable, so the whole vigil costs a
	// handful of bulk waits instead of ~2·S_h round trips.
	for waited := 0; waited < timeout; {
		if tr.last == cfg.K() && tr.stable >= z {
			return true
		}
		rem := timeout - waited
		if tr.last == cfg.K() {
			if need := z - tr.stable; need < rem {
				rem = need
			}
		}
		w, _ := tr.waitOnce(r.a, rem)
		waited += w
	}
	return false
}

// starCheck is Algorithm 9: the k_h agents take turns visiting all neighbors
// of the central node while the others verify, through CurCard alone, that
// exactly one agent is out at odd ticks and everyone is back at even ticks —
// twice. It lasts exactly 4·d·k_h rounds for every agent.
func (r *runner) starCheck(cfg *config.Configuration) bool {
	deg := r.a.Degree()
	rank := cfg.Rank(r.a.Label())
	k := cfg.K()
	b := true
	for t := 1; t <= 2; t++ {
		for i := 0; i < k; i++ {
			if i == rank && (t == 1 || b) {
				for j := 0; j < deg; j++ {
					e := r.take(j)
					if t == 1 && r.a.CurCard() != 1 {
						b = false
					}
					r.take(e)
					if r.a.CurCard() != k {
						b = false
					}
				}
			} else {
				for j := 1; j <= 2*deg; j++ {
					r.a.Wait()
					if (j%2 == 1 && r.a.CurCard() != k-1) || (j%2 == 0 && r.a.CurCard() != k) {
						b = false
					}
				}
			}
		}
	}
	return b
}

// ensureCleanExploration is Algorithm 10: two full sweeps of every port path
// of length L(h) from the central node; any round in which the group is not
// exactly the k_h hypothesized agents aborts with false. With L(h) >= true
// diameter (invariant I5) the sweep covers the whole graph, so any stray
// agent — nearly immobile during this window by invariant I2 — is detected.
func (r *runner) ensureCleanExploration(cfg *config.Configuration, d Dims) bool {
	alpha := d.N - 1
	if alpha < 1 {
		alpha = 1
	}
	k := cfg.K()
	path := make([]int, d.Radius)
	entries := make([]int, 0, d.Radius)
	for t := 1; t <= 2; t++ {
		for i := range path {
			path[i] = 0
		}
		for {
			entries = entries[:0]
			for i := 0; i < d.Radius; i++ {
				if path[i] >= r.a.Degree() {
					break
				}
				entries = append(entries, r.take(path[i]))
				if r.a.CurCard() != k {
					return false
				}
			}
			for i := len(entries) - 1; i >= 0; i-- {
				r.take(entries[i])
			}
			if !nextWord(path, alpha) {
				break
			}
		}
	}
	return true
}

// graphSizeCheck is Algorithm 11: the k_h agents take turns running EST+
// with the others playing the stationary token; every turn is padded to
// exactly 2·T(EST(n_h)) rounds.
func (r *runner) graphSizeCheck(cfg *config.Configuration, d Dims) bool {
	rank := cfg.Rank(r.a.Label())
	start := r.a.LocalRound()
	ok := false
	for i := 1; i <= cfg.K(); i++ {
		if i == rank+1 {
			res := r.estPlus(d)
			ok = res.SizeOK
		}
		r.a.WaitRounds(2*i*d.EstDur - (r.a.LocalRound() - start))
	}
	return ok
}

// estPlus runs EST+ while recording its entry ports for the return walk.
// The walk is balanced (it ends where it starts), so recording preserves the
// retrace property of the second part.
func (r *runner) estPlus(d Dims) est.Result {
	return est.ExplorePlus(&recordingAPI{r: r}, d.N)
}

// recordingAPI forwards EST+ moves through the runner's recorder. est only
// needs TakePort, Wait, Degree, CurCard and the size oracle.
type recordingAPI struct {
	r *runner
}

func (w *recordingAPI) TakePort(p int) int { return w.r.take(p) }
func (w *recordingAPI) Wait()              { w.r.a.Wait() }
func (w *recordingAPI) Degree() int        { return w.r.a.Degree() }
func (w *recordingAPI) CurCard() int       { return w.r.a.CurCard() }
func (w *recordingAPI) OracleGraphSize() int {
	return w.r.a.OracleGraphSize()
}

// nextWord advances word to the next value over {0..alpha-1}; false after
// the last word.
func nextWord(word []int, alpha int) bool {
	for i := len(word) - 1; i >= 0; i-- {
		word[i]++
		if word[i] < alpha {
			return true
		}
		word[i] = 0
	}
	return false
}
