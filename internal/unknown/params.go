// Package unknown implements GatherUnknownUpperBound (Section 4 of the
// paper): gathering with no a-priori knowledge whatsoever about the network,
// by testing an enumeration Ω of all initial configurations, one hypothesis
// per phase, with movement "dances" (StarCheck, EnsureCleanExploration) and
// token-based exploration (EST+) replacing all communication.
//
// # Duration profiles
//
// The paper's duration formulas (ball radius 4h·m_h⁵, slowdown
// 7·m_h^(2·m_h⁵), sweep length n_h⁵+1, T(EST(n)) = n⁵) are chosen for proof
// uniformity over arbitrary unknown graphs and are astronomically large even
// for two nodes. This package runs the same algorithms under a scaled
// profile (Params) that preserves every ordering invariant the correctness
// proofs use, specialized to runs whose true graph has diameter at most
// Params.RadiusCap (validated up front):
//
//	I1 ball coverage   — the BallTraversal sweep radius R(h) is at least the
//	                     true diameter, so the sweep visits every node any
//	                     potential interferer could start from (the paper's
//	                     kernel/ball property) and wakes every dormant agent.
//	I2 slowdown        — the wait W(h) inserted before every non-sensitive
//	                     move strictly exceeds twice the longest sensitive
//	                     window (StarCheck + EnsureCleanExploration +
//	                     GraphSizeCheck) of every hypothesis x <= h, so a
//	                     slow agent makes at most one move inside any
//	                     sensitive window (Lemmas 4.7/4.9).
//	I3 preprocessing   — S_h = T(BallTraversal(h)) + Σ_{i<h} T_i upper-bounds
//	                     the time for a freshly woken agent to reach
//	                     hypothesis h (Lemmas 4.5/4.6).
//	I4 phase duration  — T_h upper-bounds every possible execution of
//	                     Hypothesis(h) including the slowed return walk, so
//	                     the trailing wait makes phases last exactly T_h.
//	I5 sweep coverage  — the EnsureCleanExploration sweep length is at least
//	                     the true diameter, so any stray agent (which can
//	                     move at most one edge during a sensitive window, by
//	                     I2) is detected before GraphSizeCheck runs
//	                     (Lemma 4.9).
//
// PaperDims reproduces the paper's exact formulas with math/big for
// documentation and tests; it is not runnable, which is itself faithful:
// Theorem 4.1 claims feasibility with exponential complexity, reproduced as
// experiment E8.
package unknown

import (
	"fmt"
	"math/big"

	"nochatter/internal/config"
	"nochatter/internal/est"
	"nochatter/internal/graph"
)

// Params selects the scaled duration profile of a run.
type Params struct {
	// RadiusCap is the ball-sweep and clean-sweep radius R(h) = L(h). The
	// true graph's diameter must not exceed it (ValidateFor checks).
	RadiusCap int
	// MaxN restricts the enumeration to graphs of at most MaxN nodes; the
	// true graph must not be larger (<= config.MaxSupportedN).
	MaxN int
}

// DefaultParams is suitable for every run with a true graph of at most 3
// nodes (diameter at most 2).
func DefaultParams() Params { return Params{RadiusCap: 2, MaxN: 3} }

// ValidateFor checks that the profile's invariants apply to runs on g.
func (p Params) ValidateFor(g *graph.Graph) error {
	if g.N() > p.MaxN {
		return fmt.Errorf("unknown: graph has %d nodes, profile supports at most %d", g.N(), p.MaxN)
	}
	if d := g.Diameter(); d > p.RadiusCap {
		return fmt.Errorf("unknown: graph diameter %d exceeds radius cap %d", d, p.RadiusCap)
	}
	return nil
}

// Dims carries every duration constant of one hypothesis h under the scaled
// profile. All agents compute identical Dims from the shared enumeration.
type Dims struct {
	H int // hypothesis index (1-based)
	N int // n_h: graph size of φ_h
	K int // k_h: number of labeled nodes of φ_h
	M int // m_h = max_{i<=h} n_i

	Radius int // R(h): ball-traversal and clean-sweep path length
	Slow   int // W(h): wait inserted before every slow move
	TBall  int // worst-case duration of BallTraversal(h)
	S      int // S_h: preprocessing wait
	T      int // T_h: exact duration of a failed Hypothesis(h)
	EstDur int // T(EST(n_h))

	SensUpper  int // upper bound on StarCheck+ECE+GraphSizeCheck duration
	MovesUpper int // upper bound on first-part move count
}

// Schedule lazily computes Dims for h = 1, 2, ... and caches the hypothesis
// configurations. Each agent owns one Schedule; determinism of the
// enumeration makes all agents agree.
type Schedule struct {
	params  Params
	enum    *config.Enumerator
	dims    []Dims
	sumT    int
	maxN    int
	sensCum int
}

// NewSchedule returns a fresh schedule for the given profile.
func NewSchedule(p Params) *Schedule {
	return &Schedule{params: p, enum: config.NewEnumerator(p.MaxN)}
}

// Config returns φ_h.
func (s *Schedule) Config(h int) *config.Configuration { return s.enum.At(h) }

// Dim returns the duration constants of hypothesis h.
func (s *Schedule) Dim(h int) Dims {
	for len(s.dims) < h {
		s.dims = append(s.dims, s.compute(len(s.dims)+1))
	}
	return s.dims[h-1]
}

func (s *Schedule) compute(h int) Dims {
	cfg := s.enum.At(h)
	n, k := cfg.N(), cfg.K()
	if n > s.maxN {
		s.maxN = n
	}
	m := s.maxN
	r := s.params.RadiusCap

	alpha := n - 1
	if alpha < 1 {
		alpha = 1
	}
	paths := pow(alpha, r)

	estDur := est.Duration(n)
	scDur := 4 * m * k          // StarCheck: 4·d·k with d <= m-1 < m
	eceDur := 2 * paths * 2 * r // two sweeps of all paths, 2R moves each
	gscDur := 2 * k * estDur    // GraphSizeCheck: k turns of EST+
	sens := scDur + eceDur + gscDur
	if sens > s.sensCum {
		s.sensCum = sens
	}
	slow := 2*s.sensCum + 2

	tBall := paths * 2 * r * (slow + 1)
	sh := tBall + s.sumT

	// MoveToCentralNode: walk + stability wait bounded by 2(S_h+n_h)+4.
	mtcnMax := (n - 1) + 2*(sh+n) + 6
	moves := paths*2*r + // ball traversal
		(n - 1) + // move to central node
		4*m*k + // star check
		2*paths*2*r + // clean sweep
		2*est.DurationPlus(n) + // EST+ walk (generous)
		8
	th := sh + tBall + mtcnMax + sens + moves*(slow+1) + 16

	s.sumT += th
	return Dims{
		H: h, N: n, K: k, M: m,
		Radius: r, Slow: slow, TBall: tBall, S: sh, T: th, EstDur: estDur,
		SensUpper: sens, MovesUpper: moves,
	}
}

func pow(base, exp int) int {
	out := 1
	for i := 0; i < exp; i++ {
		out *= base
	}
	return out
}

// CheckInvariants verifies invariants I1..I5 (package comment) for the
// first maxH hypotheses of the schedule against a concrete run graph.
// Experiments call this before trusting a profile on a new topology.
func (s *Schedule) CheckInvariants(g *graph.Graph, maxH int) error {
	if err := s.params.ValidateFor(g); err != nil {
		return err
	}
	diam := g.Diameter()
	sumT := 0
	for h := 1; h <= maxH; h++ {
		d := s.Dim(h)
		if d.Radius < diam {
			return fmt.Errorf("unknown: I1/I5 violated at h=%d: radius %d < diameter %d", h, d.Radius, diam)
		}
		// I2: the slowdown must strictly exceed twice every sensitive window
		// seen so far (sensCum is a running max by construction; verify
		// against each earlier hypothesis independently).
		for x := 1; x <= h; x++ {
			if d.Slow <= 2*s.Dim(x).SensUpper {
				return fmt.Errorf("unknown: I2 violated at h=%d vs x=%d: slow %d <= 2*%d",
					h, x, d.Slow, s.Dim(x).SensUpper)
			}
		}
		if d.S != d.TBall+sumT {
			return fmt.Errorf("unknown: I3 violated at h=%d: S=%d != TBall %d + ΣT %d",
				h, d.S, d.TBall, sumT)
		}
		// I4: T_h covers the first part, the slowed return walk and slack.
		mtcnMax := (d.N - 1) + 2*(d.S+d.N) + 6
		if d.T < d.S+d.TBall+mtcnMax+d.SensUpper+d.MovesUpper*(d.Slow+1) {
			return fmt.Errorf("unknown: I4 violated at h=%d", h)
		}
		sumT += d.T
	}
	return nil
}

// PaperDims reports the paper's exact (unscaled) constants for hypothesis h
// with parameters n_h, k_h, m_h, as arbitrary-precision integers:
// ball radius 4h·m_h⁵, slowdown 7·m_h^(2·m_h⁵), ball-traversal bound
// 64^(h·m_h^(7h·m_h⁵)) — implemented as the tighter explicit bound
// 8h·m_h⁵·n_h^(4h·m_h⁵)·(1+slowdown) from the proof of Lemma 4.3 — and
// sweep length n_h⁵+1. These document what the scaled profile stands in for.
type PaperDimsResult struct {
	BallRadius *big.Int
	Slowdown   *big.Int
	TBall      *big.Int
	SweepLen   *big.Int
	EstDur     *big.Int
}

// PaperDims computes the paper's duration constants for hypothesis h.
func PaperDims(h, nh, mh int) PaperDimsResult {
	bh := big.NewInt(int64(h))
	bn := big.NewInt(int64(nh))
	bm := big.NewInt(int64(mh))

	m5 := new(big.Int).Exp(bm, big.NewInt(5), nil)
	radius := new(big.Int).Mul(big.NewInt(4), new(big.Int).Mul(bh, m5)) // 4h·m⁵

	twoM5 := new(big.Int).Mul(big.NewInt(2), m5)
	slowdown := new(big.Int).Mul(big.NewInt(7), new(big.Int).Exp(bm, twoM5, nil)) // 7·m^(2m⁵)

	// 8h·m⁵ · n^(4h·m⁵) · (1 + slowdown), cf. proof of Lemma 4.3.
	nPow := new(big.Int).Exp(bn, radius, nil)
	tball := new(big.Int).Mul(big.NewInt(8), new(big.Int).Mul(bh, m5))
	tball.Mul(tball, nPow)
	tball.Mul(tball, new(big.Int).Add(big.NewInt(1), slowdown))

	sweep := new(big.Int).Exp(bn, big.NewInt(5), nil)
	sweep.Add(sweep, big.NewInt(1)) // n⁵+1

	estDur := new(big.Int).Exp(bn, big.NewInt(5), nil) // T(EST(n)) = n⁵

	return PaperDimsResult{
		BallRadius: radius,
		Slowdown:   slowdown,
		TBall:      tball,
		SweepLen:   sweep,
		EstDur:     estDur,
	}
}
