package unknown

import (
	"nochatter/internal/config"
	"nochatter/internal/sim"
)

// maxHypotheses caps the hypothesis loop defensively. Phase durations grow
// geometrically, so a run that legitimately needs more hypotheses than this
// would first exhaust any simulation budget; reaching the cap therefore
// indicates a bug or a misconfigured profile.
const maxHypotheses = 64

// NewProgram returns the agent program for GatherUnknownUpperBound
// (Algorithm 5): test hypotheses φ1, φ2, ... until one is confirmed; then
// declare, knowing the leader (smallest label of the confirmed
// configuration) and the true graph size (Theorem 4.1).
//
// Every agent constructs the identical Schedule from the shared enumeration,
// which is what the paper means by a fixed Ω known to all agents.
func NewProgram(p Params) sim.Program {
	return func(a *sim.API) sim.Report {
		r := &runner{a: a, sched: NewSchedule(p)}
		for h := 1; h <= maxHypotheses; h++ {
			if r.hypothesis(h) {
				cfg := r.sched.Config(h)
				return sim.Report{Leader: cfg.SmallestLabel(), Size: cfg.N()}
			}
		}
		panic("unknown: exceeded hypothesis cap; algorithm bug or misconfigured profile")
	}
}

// ScenarioFor builds the sim agent specs matching a configuration: one agent
// per labeled node, starting exactly where the configuration places it. Wake
// rounds are all zero; callers may adjust them before running.
func ScenarioFor(cfg *config.Configuration, p Params) []sim.AgentSpec {
	labels := cfg.SortedLabels()
	specs := make([]sim.AgentSpec, 0, len(labels))
	for _, l := range labels {
		node, _ := cfg.NodeOf(l)
		specs = append(specs, sim.AgentSpec{
			Label:   l,
			Start:   node,
			Program: NewProgram(p),
		})
	}
	return specs
}
