package unknown

import (
	"testing"

	"nochatter/internal/config"
	"nochatter/internal/graph"
	"nochatter/internal/sim"
)

// starGraph3 is the first three-node graph of the enumeration: a star with
// center 0 and leaves 1, 2 (identity port assignment).
func starGraph3() *graph.Graph {
	return graph.NewBuilder("star3", 3).
		AddEdge(0, 1, 0, 0).
		AddEdge(0, 2, 1, 0).
		MustBuild()
}

// cfg12 labels the center 1 and leaf 1 with 2 (this is φ_3 of Ω).
func cfg12() *config.Configuration {
	return &config.Configuration{G: starGraph3(), Labels: map[int]int{0: 1, 1: 2}}
}

// dimsFor returns small Dims consistent with cfg for direct subroutine runs.
func dimsFor(cfg *config.Configuration) Dims {
	return Dims{
		H: 1, N: cfg.N(), K: cfg.K(), M: cfg.N(),
		Radius: 2, Slow: 4, TBall: 200, S: 50, T: 100000, EstDur: 16,
	}
}

// runPair places agents of cfg at their nodes, aligns them, and runs body.
func runPair(t *testing.T, cfg *config.Configuration, extra []sim.AgentSpec,
	body func(r *runner, label int) bool) map[int]bool {
	t.Helper()
	results := map[int]bool{}
	var specs []sim.AgentSpec
	for _, l := range cfg.SortedLabels() {
		l := l
		node, _ := cfg.NodeOf(l)
		specs = append(specs, sim.AgentSpec{
			Label: l, Start: node, WakeRound: 0,
			Program: func(a *sim.API) sim.Report {
				r := &runner{a: a, sched: NewSchedule(DefaultParams())}
				results[l] = body(r, l)
				return sim.Report{}
			},
		})
	}
	specs = append(specs, extra...)
	if _, err := sim.Run(sim.Scenario{Graph: cfg.G, Agents: specs}); err != nil {
		t.Fatal(err)
	}
	return results
}

// gatherAtCentral walks the agent to the central node and waits until round
// `align` so that all participants start the dance simultaneously.
func gatherAtCentral(r *runner, cfg *config.Configuration, align int) {
	p, _ := cfg.PathToCentral(r.a.Label())
	for _, port := range p {
		r.take(port)
	}
	r.a.WaitRounds(align - len(p))
}

func TestStarCheckCleanPair(t *testing.T) {
	cfg := cfg12()
	d := dimsFor(cfg)
	res := runPair(t, cfg, nil, func(r *runner, label int) bool {
		gatherAtCentral(r, cfg, 3)
		_ = d
		return r.starCheck(cfg)
	})
	for l, ok := range res {
		if !ok {
			t.Errorf("agent %d: clean StarCheck returned false", l)
		}
	}
}

func TestStarCheckDetectsIntruderAtCenter(t *testing.T) {
	cfg := cfg12()
	// An unlabeled third agent parks at the central node for the whole dance:
	// every cardinality check is off by one.
	intruder := sim.AgentSpec{
		Label: 99, Start: 2, WakeRound: 0,
		Program: func(a *sim.API) sim.Report {
			a.TakePort(0) // leaf 2 -> center
			a.WaitRounds(200)
			return sim.Report{}
		},
	}
	res := runPair(t, cfg, []sim.AgentSpec{intruder}, func(r *runner, label int) bool {
		gatherAtCentral(r, cfg, 3)
		return r.starCheck(cfg)
	})
	for l, ok := range res {
		if ok {
			t.Errorf("agent %d: StarCheck must detect the intruder", l)
		}
	}
}

func TestStarCheckDetectsDesync(t *testing.T) {
	cfg := cfg12()
	// The two legitimate agents start the dance one round apart: the dance
	// must fail for at least the later one (this is the property the
	// stability-wait of MoveToCentralNode exists to protect).
	res := map[int]bool{}
	var specs []sim.AgentSpec
	for i, l := range cfg.SortedLabels() {
		l, i := l, i
		node, _ := cfg.NodeOf(l)
		specs = append(specs, sim.AgentSpec{
			Label: l, Start: node, WakeRound: 0,
			Program: func(a *sim.API) sim.Report {
				r := &runner{a: a, sched: NewSchedule(DefaultParams())}
				gatherAtCentral(r, cfg, 3+i) // staggered entry
				res[l] = r.starCheck(cfg)
				return sim.Report{}
			},
		})
	}
	if _, err := sim.Run(sim.Scenario{Graph: cfg.G, Agents: specs}); err != nil {
		t.Fatal(err)
	}
	if res[1] && res[2] {
		t.Error("desynchronized StarCheck must not pass for both agents")
	}
}

func TestECECleanPair(t *testing.T) {
	cfg := cfg12()
	d := dimsFor(cfg)
	res := runPair(t, cfg, nil, func(r *runner, label int) bool {
		gatherAtCentral(r, cfg, 3)
		return r.ensureCleanExploration(cfg, d)
	})
	for l, ok := range res {
		if !ok {
			t.Errorf("agent %d: clean ECE returned false", l)
		}
	}
}

func TestECEDetectsStationaryStray(t *testing.T) {
	cfg := cfg12()
	d := dimsFor(cfg)
	// A stray sits at leaf 2 (distance 1 from the central node): the sweep
	// must visit it and notice the cardinality anomaly.
	stray := sim.AgentSpec{
		Label: 99, Start: 2, WakeRound: 0,
		Program: func(a *sim.API) sim.Report {
			a.WaitRounds(500)
			return sim.Report{}
		},
	}
	res := runPair(t, cfg, []sim.AgentSpec{stray}, func(r *runner, label int) bool {
		gatherAtCentral(r, cfg, 3)
		return r.ensureCleanExploration(cfg, d)
	})
	for l, ok := range res {
		if ok {
			t.Errorf("agent %d: ECE must detect the stray", l)
		}
	}
}

func TestBallTraversalDegreeAbort(t *testing.T) {
	// On a 4-star, hypothesis n=3 must abort: the center has degree 3 >= 3.
	g := graph.Star(4)
	var fromCenter, fromLeaf bool
	specs := []sim.AgentSpec{
		{Label: 1, Start: 0, WakeRound: 0, Program: func(a *sim.API) sim.Report {
			r := &runner{a: a, sched: NewSchedule(DefaultParams())}
			fromCenter = r.ballTraversal(Dims{N: 3, Radius: 2, Slow: 1, TBall: 1000})
			return sim.Report{}
		}},
		{Label: 2, Start: 1, WakeRound: 0, Program: func(a *sim.API) sim.Report {
			r := &runner{a: a, sched: NewSchedule(DefaultParams())}
			fromLeaf = r.ballTraversal(Dims{N: 3, Radius: 2, Slow: 1, TBall: 1000})
			return sim.Report{}
		}},
	}
	if _, err := sim.Run(sim.Scenario{Graph: g, Agents: specs}); err != nil {
		t.Fatal(err)
	}
	if fromCenter {
		t.Error("center (degree 3) must abort hypothesis n=3 immediately")
	}
	if fromLeaf {
		t.Error("leaf must abort after stepping onto the center")
	}
}

func TestBallTraversalCoversAndReturns(t *testing.T) {
	g := starGraph3()
	for start := 0; start < 3; start++ {
		visited := map[int]bool{}
		var ok bool
		spec := sim.AgentSpec{
			Label: 1, Start: start, WakeRound: 0,
			Program: func(a *sim.API) sim.Report {
				r := &runner{a: a, sched: NewSchedule(DefaultParams())}
				ok = r.ballTraversal(Dims{N: 3, Radius: 2, Slow: 1, TBall: 100000})
				return sim.Report{}
			},
		}
		res, err := sim.Run(sim.Scenario{
			Graph:  g,
			Agents: []sim.AgentSpec{spec},
			OnRound: func(v sim.RoundView) {
				visited[v.Positions[0]] = true
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("start %d: traversal should succeed (all degrees < 3)", start)
		}
		if len(visited) != 3 {
			t.Errorf("start %d: visited %d/3 nodes", start, len(visited))
		}
		if res.Agents[0].FinalNode != start {
			t.Errorf("start %d: ended at %d", start, res.Agents[0].FinalNode)
		}
	}
}

func TestCheckInvariants(t *testing.T) {
	p := DefaultParams()
	s := NewSchedule(p)
	for _, g := range []*graph.Graph{graph.TwoNodes(), starGraph3()} {
		if err := s.CheckInvariants(g, 6); err != nil {
			t.Errorf("%s: %v", g.Name(), err)
		}
	}
	// A graph violating the profile must be rejected.
	if err := s.CheckInvariants(graph.Ring(6), 3); err == nil {
		t.Error("ring-6 exceeds MaxN and must fail validation")
	}
	if err := s.CheckInvariants(graph.Path(3), 3); err != nil {
		t.Errorf("path-3 (diameter 2) should validate: %v", err)
	}
}
