package unknown

import (
	"testing"

	"nochatter/internal/config"
	"nochatter/internal/sim"
)

// runConfig executes GatherUnknownUpperBound on the scenario that matches
// φ_h from the enumeration and asserts Theorem 4.1's postconditions: all
// agents declare together, with the correct leader and the true graph size.
func runConfig(t *testing.T, h int, wake func(i int) int) *sim.RunResult {
	t.Helper()
	p := DefaultParams()
	cfg := NewSchedule(p).Config(h)
	if err := p.ValidateFor(cfg.G); err != nil {
		t.Fatal(err)
	}
	specs := ScenarioFor(cfg, p)
	for i := range specs {
		if wake != nil {
			specs[i].WakeRound = wake(i)
		}
	}
	res, err := sim.Run(sim.Scenario{Graph: cfg.G, Agents: specs})
	if err != nil {
		t.Fatalf("φ_%d: %v", h, err)
	}
	if !res.AllHaltedTogether() {
		for _, a := range res.Agents {
			t.Logf("label %d: halted=%v round=%d node=%d", a.Label, a.Halted, a.HaltRound, a.FinalNode)
		}
		t.Fatalf("φ_%d: agents did not declare together", h)
	}
	wantLeader := cfg.SmallestLabel()
	for _, a := range res.Agents {
		if a.Report.Leader != wantLeader {
			t.Errorf("φ_%d label %d: leader %d, want %d", h, a.Label, a.Report.Leader, wantLeader)
		}
		if a.Report.Size != cfg.N() {
			t.Errorf("φ_%d label %d: size %d, want %d", h, a.Label, a.Report.Size, cfg.N())
		}
	}
	return res
}

func TestTwoNodeConfig(t *testing.T) {
	// φ_1 is the two-node configuration with labels 1, 2: the fastest case.
	runConfig(t, 1, nil)
}

func TestTwoNodeSwappedLabels(t *testing.T) {
	// φ_2: same graph, labels swapped; must be reached after a full failed
	// phase of duration T_1.
	runConfig(t, 2, nil)
}

func TestThreeNodeConfig(t *testing.T) {
	// φ_3 is the first three-node configuration in Ω.
	runConfig(t, 3, nil)
}

func TestDelayedWake(t *testing.T) {
	// Second agent dormant: it must be woken by the first agent's ball
	// traversal (invariant I1: the sweep covers the whole graph).
	runConfig(t, 1, func(i int) int {
		if i == 0 {
			return 0
		}
		return sim.DormantUntilVisited
	})
}

func TestDelayedWakeThreeNodes(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	runConfig(t, 3, func(i int) int {
		if i == 0 {
			return 0
		}
		return sim.DormantUntilVisited
	})
}

func TestAdversarialWakeRound(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	runConfig(t, 3, func(i int) int { return i * 37 })
}

func TestSymmetricConfigConfirmsEarly(t *testing.T) {
	// φ_2 is φ_1 under the node-swapping automorphism of the anonymous
	// two-node graph, so its run legitimately confirms hypothesis 1 — the
	// paper's "φ_h ≠ φ but gathering is achieved anyway" case. Leader and
	// size are still correct, and the cost matches φ_1's exactly.
	r1 := runConfig(t, 1, nil)
	r2 := runConfig(t, 2, nil)
	if r1.Rounds != r2.Rounds {
		t.Errorf("symmetric configs should cost the same: %d vs %d", r1.Rounds, r2.Rounds)
	}
}

func TestLaterConfigsCostMore(t *testing.T) {
	// E8's shape: the declaration round grows geometrically with the
	// hypothesis index of the true configuration, for configurations that
	// are genuinely distinguishable (different label sets).
	if testing.Short() {
		t.Skip("slow")
	}
	r1 := runConfig(t, 1, nil) // labels {1,2}, n=2 — confirms at h=1
	r3 := runConfig(t, 3, nil) // labels {1,2}, n=3 — needs h=3
	r4 := runConfig(t, 4, nil) // labels {1,3}, n=3 — needs h=4
	if !(r1.Rounds < r3.Rounds && r3.Rounds < r4.Rounds) {
		t.Errorf("rounds not increasing: %d, %d, %d", r1.Rounds, r3.Rounds, r4.Rounds)
	}
	t.Logf("declaration rounds: φ_1=%d φ_3=%d φ_4=%d", r1.Rounds, r3.Rounds, r4.Rounds)
}

func TestScheduleMonotone(t *testing.T) {
	s := NewSchedule(DefaultParams())
	prevT := 0
	for h := 1; h <= 10; h++ {
		d := s.Dim(h)
		if d.T <= prevT {
			t.Errorf("T_%d = %d not greater than T_%d = %d", h, d.T, h-1, prevT)
		}
		if d.S < d.TBall {
			t.Errorf("S_%d = %d < TBall %d", h, d.S, d.TBall)
		}
		if d.Slow <= 2*d.SensUpper {
			t.Errorf("W_%d = %d must exceed twice the sensitive window %d", h, d.Slow, d.SensUpper)
		}
		prevT = d.T
	}
}

func TestScheduleAgentsAgree(t *testing.T) {
	a, b := NewSchedule(DefaultParams()), NewSchedule(DefaultParams())
	for h := 1; h <= 8; h++ {
		if a.Dim(h) != b.Dim(h) {
			t.Fatalf("schedules disagree at h=%d", h)
		}
		if a.Config(h).Code() != b.Config(h).Code() {
			t.Fatalf("configs disagree at h=%d", h)
		}
	}
}

func TestValidateFor(t *testing.T) {
	p := DefaultParams()
	cfgs := config.NewEnumerator(p.MaxN)
	if err := p.ValidateFor(cfgs.At(1).G); err != nil {
		t.Errorf("two-node graph should validate: %v", err)
	}
	if err := p.ValidateFor(cfgs.At(3).G); err != nil {
		t.Errorf("three-node graph should validate: %v", err)
	}
}

func TestPaperDimsAstronomical(t *testing.T) {
	// Document the paper's real constants: even for h=1, n=m=2 the slowdown
	// alone is 7·2^64 — far beyond simulation, which is why the scaled
	// profile exists (DESIGN.md substitution 4).
	d := PaperDims(1, 2, 2)
	if d.BallRadius.Int64() != 128 {
		t.Errorf("ball radius = %v, want 4·1·2⁵ = 128", d.BallRadius)
	}
	if d.Slowdown.BitLen() < 60 {
		t.Errorf("slowdown %v unexpectedly small", d.Slowdown)
	}
	if d.TBall.BitLen() < 128 {
		t.Errorf("TBall %v unexpectedly small", d.TBall)
	}
	if d.SweepLen.Int64() != 33 {
		t.Errorf("sweep length = %v, want 2⁵+1 = 33", d.SweepLen)
	}
	if d.EstDur.Int64() != 32 {
		t.Errorf("est duration = %v, want 2⁵ = 32", d.EstDur)
	}
}
