// Package nochatter is a complete implementation of the algorithms of
// "Want to Gather? No Need to Chatter!" (Bouchard, Dieudonné, Pelc;
// PODC 2020, arXiv:1908.11402): deterministic gathering, leader election
// and gossiping for teams of mobile agents on anonymous port-labeled
// networks, in a model where co-located agents CANNOT exchange any
// information — the only inter-agent signal is the number of agents at the
// current node (CurCard).
//
// The package ships a synchronous multi-agent simulator, the paper's two
// gathering algorithms (with and without a known upper bound on the network
// size), the movement-encoded communication primitive Communicate, the
// gossip protocol, and a traditional-model baseline for comparison.
//
// # Quick start
//
// Scenarios are data. A ScenarioSpec describes a run as a pure value —
// graph family, agents, algorithms by registered name — and compiles to a
// runnable scenario; the spec itself is JSON-round-trippable, so it can be
// saved, diffed and replayed (cmd/gathersim -dump-spec / -spec):
//
//	res, err := nochatter.ScenarioSpec{
//		Graph: nochatter.GraphSpec{Family: "ring", N: 8},
//		Agents: []nochatter.SpecAgent{
//			{Label: 23, Start: 0, Algorithm: nochatter.KnownAlgorithm()},
//			{Label: 8, Start: 4, Wake: nochatter.DormantUntilVisited, Algorithm: nochatter.KnownAlgorithm()},
//		},
//	}.Run()
//
// After a successful run, res.AllHaltedTogether() reports gathering with
// simultaneous declaration and every agent's Report.Leader carries the
// elected leader (Theorem 3.1).
//
// The closure form remains first-class for custom programs — build the
// graph and shared sequence yourself and pass Programs directly:
//
//	g := nochatter.Ring(8)
//	seq := nochatter.BuildSequence(g) // operational form of "knowing N"
//	res, err := nochatter.Run(nochatter.Scenario{
//		Graph: g,
//		Agents: []nochatter.AgentSpec{
//			{Label: 23, Start: 0, WakeRound: 0, Program: nochatter.GatherKnownUpperBound(seq)},
//			{Label: 8, Start: 4, WakeRound: nochatter.DormantUntilVisited, Program: nochatter.GatherKnownUpperBound(seq)},
//		},
//	})
//
// Registering a custom program under a name (RegisterAlgorithm) makes it
// addressable from specs, sweeps and the CLI like the built-ins.
//
// # The event-driven agent↔engine contract
//
// Agent programs talk to the engine through an instruction contract the
// engine can reason about: API.WaitRounds and API.WaitUntil submit a single
// bulk wait (not one handoff per round), API.WalkOffsets and API.WalkPorts
// submit whole multi-round walks the engine executes itself, and
// interruption conditions are declarative Condition values (CardAtLeast,
// CardChanged, LocalRoundReached, Any) evaluated engine-side via
// API.RunUntil. Whenever every awake agent is mid-wait and no condition can
// fire, the engine fast-forwards the global clock to the next event — the
// paper's astronomically long waiting phases cost almost nothing to
// simulate. RunResult.SteppedRounds reports the rounds actually processed.
//
// Migration note: API.RunInterruptible(pred, block) with an opaque Go
// predicate still works but pins its agent to per-round stepping. Replace
// predicates of the form "CurCard() > c" with RunUntil(CardAtLeast(c+1),
// block), and stability waits with WaitUntilFor(CardChanged(), d); keep the
// closure form only for predicates the Condition algebra cannot express.
//
// # Batch runs
//
// RunBatch (and the configurable Runner with WithMaxRounds, WithOnRound,
// WithParallelism) executes many independent scenarios on a worker pool —
// the building block of every scenario sweep in internal/experiments:
//
//	results := nochatter.RunBatch(scenarios, nochatter.WithParallelism(8))
//
// Parallelism never changes results: each run is deterministic and results
// arrive in input order. RunStream (and Runner.Stream) delivers results
// one at a time in input order without materializing the slice, and
// NewSweep builds cartesian families × sizes × teams × wake schedules ×
// algorithms products of ScenarioSpecs declaratively (see
// examples/batchsweep).
//
// # Streaming summaries
//
// For sweeps whose consumers want distributions rather than rows, Summarize
// folds every result into a Summary as results stream off the worker pool —
// counts, gathering rate, and histogram-derived p50/p90/p99 of gather
// rounds, engine-stepped rounds, total moves and wall time, grouped by the
// sweep's axes (graph family, size, team count, algorithm) — without ever
// materializing the result set:
//
//	summary, err := nochatter.Summarize(nochatter.NewRunner(nochatter.WithParallelism(8)), specs)
//	fmt.Println(summary.Total.Rounds.Quantile(0.99))
//
// Every reducer is integral and merges associatively and commutatively, so
// each worker folds locally and the merged summary is bit-identical
// regardless of parallelism (Summary.CanonicalJSON; wall time, the one
// machine-decided metric, is excluded from that guarantee). The same
// artifact is served by gatherd: GET /v1/jobs/{id}/summary, cached under a
// key derived from the sweep's specs (SweepSummaryKey), and sweeps
// submitted with ?summary=only never retain raw rows at all. See DESIGN.md
// §9 and the Summarize example.
//
// # Simulation as a service
//
// cmd/gatherd serves all of the above over HTTP. Because every run is a
// deterministic function of its spec, the daemon fronts the engine with a
// content-addressed result cache (canonical-JSON SHA-256 keys, bounded LRU,
// singleflight deduplication) and an async job queue for sweeps: POST a
// ScenarioSpec to /v1/run for a cache-aware synchronous result, POST a
// SweepDef to /v1/sweeps and stream NDJSON results in input order from
// /v1/jobs/{id}/results. NewService embeds the same machinery in-process
// (see examples/serveclient and DESIGN.md §8).
//
// # Scaling out
//
// A fleet of gatherd daemons scales sweeps horizontally: a
// ClusterCoordinator partitions a sweep's expanded specs into many small
// cost-balanced chunks — a pure function of the spec list and the
// scheduling parameters (SchedPlanner, SchedDefaultCost) — which each
// ClusterWorker pulls and steals from a shared queue as summary-only
// jobs, with failed chunks rerouted off workers that fail or go
// unhealthy. Per-chunk summaries merge in fixed chunk order; because
// every reducer merges associatively and commutatively, the merged total
// is bit-identical (CanonicalJSON) to a single-process run of the whole
// sweep, whatever the fleet size, whichever workers died along the way
// and whatever order chunks finished in. `gatherd -workers
// http://a,http://b` serves the same fan-out behind POST
// /v1/sweeps?summary=only, and `gathersim -remote` drives it from the CLI
// (see examples/cluster and DESIGN.md §10, §12).
//
// See README.md for the repository front door, DESIGN.md for the system
// inventory, the documented substitutions (exploration sequences,
// rendezvous procedure, EST) and the experiment index, and EXPERIMENTS.md
// for the reproduced claims.
package nochatter

import (
	"nochatter/internal/agg"
	"nochatter/internal/baseline"
	"nochatter/internal/cluster"
	"nochatter/internal/config"
	"nochatter/internal/gather"
	"nochatter/internal/gossip"
	"nochatter/internal/graph"
	"nochatter/internal/randomized"
	"nochatter/internal/sched"
	"nochatter/internal/service"
	"nochatter/internal/sim"
	"nochatter/internal/spec"
	"nochatter/internal/ues"
	"nochatter/internal/unknown"
)

// Core simulation types, re-exported from the engine.
type (
	// Graph is an immutable anonymous port-labeled connected graph.
	Graph = graph.Graph
	// GraphBuilder assembles custom graphs edge by edge.
	GraphBuilder = graph.Builder
	// Scenario describes one simulation: a graph and its agents.
	Scenario = sim.Scenario
	// AgentSpec is one agent: label, start node, wake round, program.
	AgentSpec = sim.AgentSpec
	// Program is a complete agent algorithm in blocking style.
	Program = sim.Program
	// API is the world interface an agent program perceives.
	API = sim.API
	// Report carries algorithm results (leader, size, gossip).
	Report = sim.Report
	// RunResult is the outcome of a completed simulation.
	RunResult = sim.RunResult
	// AgentResult is one agent's final state.
	AgentResult = sim.AgentResult
	// RoundView is the per-round snapshot passed to Scenario.OnRound.
	RoundView = sim.RoundView
	// Condition is a declarative wake/interrupt predicate the engine
	// evaluates itself (see CardAtLeast, CardChanged, LocalRoundReached,
	// Any, API.WaitUntil and API.RunUntil).
	Condition = sim.Condition
	// Runner executes scenarios with shared defaults and a worker pool.
	Runner = sim.Runner
	// RunnerOption configures a Runner (WithMaxRounds, WithOnRound,
	// WithParallelism).
	RunnerOption = sim.Option
	// BatchResult is one scenario's outcome within a RunBatch.
	BatchResult = sim.BatchResult
	// Sequence is a universal exploration sequence — the operational form
	// of a known upper bound on the network size.
	Sequence = ues.Sequence
	// Timing bundles the public duration constants derived from a Sequence.
	Timing = gather.Timing
	// UnknownParams is the scaled duration profile for gathering without
	// any a-priori knowledge (see internal/unknown and DESIGN.md).
	UnknownParams = unknown.Params
	// UnknownSchedule computes per-hypothesis durations and configurations
	// of the enumeration Ω.
	UnknownSchedule = unknown.Schedule
	// Configuration is one initial configuration φ of the enumeration Ω.
	Configuration = config.Configuration
	// BaselineSpec is one agent of the traditional-model baseline.
	BaselineSpec = baseline.Spec
	// BaselineResult is the baseline's gathering outcome.
	BaselineResult = baseline.Result
)

// Scenarios as data: pure-value, JSON-round-trippable scenario descriptions
// that compile to runnable scenarios through the graph-family and algorithm
// registries, re-exported from internal/spec.
type (
	// ScenarioSpec is a complete scenario as data; Compile or Run it.
	ScenarioSpec = spec.ScenarioSpec
	// GraphSpec selects a graph by registered family name plus parameters.
	GraphSpec = spec.GraphSpec
	// SpecAgent is the pure-data description of one agent (label, start,
	// wake, algorithm by name) — the serializable counterpart of AgentSpec.
	SpecAgent = spec.AgentSpec
	// AlgorithmSpec references an agent algorithm by registered name.
	AlgorithmSpec = spec.AlgorithmSpec
	// SpecArtifacts carries the per-compilation objects shared by a team
	// (graph, memoized exploration sequence); program builders receive it.
	SpecArtifacts = spec.Artifacts
	// ProgramBuilder compiles an AlgorithmSpec into a Program; register
	// one with RegisterAlgorithm to make a custom algorithm spec-addressable.
	ProgramBuilder = spec.ProgramBuilder
	// GraphBuilderFunc builds a graph family from its parameters; register
	// one with RegisterGraphFamily.
	GraphBuilderFunc = spec.GraphBuilderFunc
	// Sweep composes cartesian products of graphs, teams, wake schedules
	// and algorithms into streams of ScenarioSpecs.
	Sweep = spec.Sweep
	// SweepTeam is the team axis of a Sweep: labels plus optional starts
	// and wakes.
	SweepTeam = spec.Team
	// SweepDef is the JSON-serializable form of a Sweep — the document
	// POST /v1/sweeps accepts (Sweep.Def and SweepDef.Sweep convert).
	SweepDef = spec.SweepDef
)

// Streaming sweep aggregation, re-exported from internal/agg: deterministic,
// merge-able reducers over run results that summarize sweeps as they stream
// instead of materializing them. See DESIGN.md §9.
type (
	// Summary is the streaming reduction of a sweep: a total cell plus one
	// cell per group key; folds with Observe, combines with Merge.
	Summary = agg.Summary
	// SummaryDist is one metric's streaming distribution: count, sum,
	// min/max and a fixed log2-bucket histogram yielding p50/p90/p99.
	SummaryDist = agg.Dist
	// SummaryGroupKey identifies one group of a summary: the spec axes a
	// sweep varies (graph family, size, team count, algorithm).
	SummaryGroupKey = agg.Key
	// SummaryCell is one group's reduction: outcome counters plus a
	// SummaryDist per metric.
	SummaryCell = agg.Cell
	// SummaryGroup is one (key, cell) pair of a summary's group-by.
	SummaryGroup = agg.Group
	// SummaryResponse is the wire form of GET /v1/jobs/{id}/summary.
	SummaryResponse = service.SummaryResponse
)

// Streaming sweep aggregation constructors, re-exported from internal/agg
// and internal/service.
var (
	// NewSummary returns an empty summary to fold results into.
	NewSummary = agg.NewSummary
	// Summarize compiles and runs specs on a Runner's worker pool, folding
	// every result into a per-worker summary merged at the end — the raw
	// result set is never materialized, and the outcome is bit-identical
	// for any parallelism.
	Summarize = agg.Summarize
	// SummarizeScenarios folds pre-compiled scenarios whose index-aligned
	// specs provide the group keys.
	SummarizeScenarios = agg.SummarizeScenarios
	// SummaryKeyOf derives a spec's group key (family, n, k, algorithm).
	SummaryKeyOf = agg.KeyOf
	// SweepSummaryKey returns the content address a sweep's summary is
	// cached under: the hash of a domain tag plus every spec's canonical
	// encoding, in order.
	SweepSummaryKey = service.SweepSummaryKey
)

// Simulation as a service: the content-addressed cache, job queue and HTTP
// API behind cmd/gatherd, re-exported from internal/service so clients of
// the daemon share its wire types and embedders can mount the handler in
// their own servers. See DESIGN.md §8.
type (
	// Service is the simulation service: cache-aware single runs, async
	// sweep jobs, metrics; Service.Handler is the gatherd HTTP API.
	Service = service.Service
	// ServiceConfig sizes a Service (cache entries, job workers, per-job
	// parallelism, backlog, sweep expansion limit).
	ServiceConfig = service.Config
	// RunResponse is the wire form of POST /v1/run.
	RunResponse = service.RunResponse
	// SweepAccepted is the wire form of POST /v1/sweeps.
	SweepAccepted = service.SweepAccepted
	// JobStatus is the wire form of GET /v1/jobs/{id}.
	JobStatus = service.JobStatus
	// JobResult is one NDJSON line of GET /v1/jobs/{id}/results.
	JobResult = service.JobResult
	// JobState is a job's lifecycle position (queued/running/done/failed).
	JobState = service.JobState
	// ServiceMetrics is the wire form of GET /metrics.
	ServiceMetrics = service.Metrics
)

// Cluster-scheduled sweeps, re-exported from internal/cluster: a
// coordinator that partitions a sweep's expanded specs into cost-balanced
// chunks which a fleet of gatherd workers pulls and steals as summary-only
// jobs, reroutes failed chunks to survivors, and merges the per-chunk
// summaries — in fixed chunk order — into a total bit-identical
// (CanonicalJSON) to a single-process run. cmd/gatherd -workers serves
// this behind POST /v1/sweeps?summary=only. See DESIGN.md §10, §12 and
// examples/cluster.
type (
	// ClusterCoordinator schedules sweeps across gatherd workers and merges
	// their summaries deterministically.
	ClusterCoordinator = cluster.Coordinator
	// ClusterWorker is the HTTP client of one gatherd backend: summary-only
	// submission, summary long-polling, health probes, bounded retries.
	ClusterWorker = cluster.Worker
	// ClusterWorkerOption configures a ClusterWorker (retry budget, HTTP
	// client).
	ClusterWorkerOption = cluster.WorkerOption
)

// Cluster constructors and the sharding function, re-exported from
// internal/cluster.
var (
	// NewClusterCoordinator returns a coordinator over the given workers.
	NewClusterCoordinator = cluster.NewCoordinator
	// NewClusterWorker returns a client for the gatherd at a base URL.
	NewClusterWorker = cluster.NewWorker
	// ClusterShardBounds is the deterministic static sharding function: the
	// half-open spec range [lo, hi) of shard i when n specs are partitioned
	// contiguously over a worker count — the degenerate one-chunk-per-worker
	// plan (SchedStaticBounds is the same function).
	ClusterShardBounds = cluster.ShardBounds
	// WithClusterRetries sets a worker's retry budget and backoff base.
	WithClusterRetries = cluster.WithRetries
	// WithClusterHTTPClient sets a worker's HTTP client.
	WithClusterHTTPClient = cluster.WithHTTPClient
)

// The sweep scheduler, re-exported from internal/sched: the deterministic
// cost-weighted chunk planner behind ClusterCoordinator, its calibrated
// cost model, and the stats the coordinator reports. The partition is a
// pure function of the spec list and the scheduling parameters — never of
// timing or completion order — which is what keeps distributed totals
// bit-identical to local ones. See DESIGN.md §12.
type (
	// SchedChunk is one schedulable unit: a contiguous spec range, its
	// predicted cost, and its fixed merge position.
	SchedChunk = sched.Chunk
	// SchedPlanner partitions expanded sweeps into cost-balanced chunks;
	// the zero value is the coordinator's default configuration.
	SchedPlanner = sched.Planner
	// SchedCostModel predicts one spec's relative execution cost.
	SchedCostModel = sched.CostModel
	// SchedWorkerStats counts one worker's share of dispatched, stolen,
	// retried and failed chunks.
	SchedWorkerStats = sched.WorkerStats
	// SchedFleetStats aggregates scheduler counters across a coordinator's
	// sweeps, as served under "scheduler" in a coordinator's GET /metrics.
	SchedFleetStats = sched.FleetStats
)

// Scheduler functions, re-exported from internal/sched.
var (
	// SchedDefaultCost is the calibrated per-spec cost model (engine-stepped
	// rounds as a function of graph family, size and team size).
	SchedDefaultCost = sched.DefaultCost
	// SchedStaticBounds is the degenerate one-chunk-per-worker partition.
	SchedStaticBounds = sched.StaticBounds
)

// Service construction and spec hashing, re-exported from internal/service.
var (
	// NewService returns a started simulation service; Close it when done.
	NewService = service.New
	// CanonicalSpec returns a spec's canonical JSON encoding — the cache
	// key material (name stripped, sorted keys, normalized numbers).
	CanonicalSpec = service.CanonicalSpec
	// SpecKey returns a spec's content address: hex SHA-256 of its
	// canonical encoding. Equal keys mean equal runs.
	SpecKey = service.SpecKey
	// ParseSweepDef decodes a SweepDef from JSON (unknown fields rejected).
	ParseSweepDef = spec.ParseSweepDef
)

// Job lifecycle states, re-exported from internal/service.
const (
	JobQueued  = service.JobQueued
	JobRunning = service.JobRunning
	JobDone    = service.JobDone
	JobFailed  = service.JobFailed
)

// Spec construction, parsing and registries, re-exported from internal/spec.
var (
	// ParseSpec decodes a ScenarioSpec from JSON (unknown fields rejected).
	ParseSpec = spec.Parse
	// LoadSpec reads and parses a ScenarioSpec from a JSON file.
	LoadSpec = spec.Load
	// BuildGraph compiles a GraphSpec through the family registry.
	BuildGraph = spec.BuildGraph
	// CompileSpecs compiles a slice of specs (a sweep's output) into
	// scenarios ready for RunBatch or RunStream.
	CompileSpecs = spec.CompileAll
	// RegisterGraphFamily adds a graph family to the registry.
	RegisterGraphFamily = spec.RegisterGraphFamily
	// GraphFamilies lists the registered family names.
	GraphFamilies = spec.GraphFamilies
	// RegisterAlgorithm adds an algorithm to the registry.
	RegisterAlgorithm = spec.RegisterAlgorithm
	// Algorithms lists the registered algorithm names.
	Algorithms = spec.Algorithms
	// NewSweep starts a declarative scenario sweep.
	NewSweep = spec.NewSweep
	// TeamOfSize returns the canonical k-agent team (labels 1..k at nodes
	// 0..k-1).
	TeamOfSize = spec.TeamOfSize
	// KnownAlgorithm is the spec of GatherKnownUpperBound (Algorithm 3).
	KnownAlgorithm = spec.Known
	// GossipAlgorithm is the spec of GossipKnownUpperBound (Section 5).
	GossipAlgorithm = spec.Gossip
	// UnknownAlgorithm is the spec of GatherUnknownUpperBound (Algorithm 5).
	UnknownAlgorithm = spec.Unknown
	// RandomizedAlgorithm is the spec of the randomized rendezvous (Sec. 6).
	RandomizedAlgorithm = spec.Randomized
	// BaselineAlgorithm is the spec of the traditional-model baseline.
	BaselineAlgorithm = spec.Baseline
)

// DormantUntilVisited marks an agent the adversary never wakes; it starts
// when another agent first visits its start node.
const DormantUntilVisited = sim.DormantUntilVisited

// Run executes a scenario to completion, deterministically.
func Run(sc Scenario) (*RunResult, error) { return sim.Run(sc) }

// Declarative wait/interrupt conditions and the batch API, re-exported from
// the engine.
var (
	// CardAtLeast fires when CurCard reaches k (the paper's "as soon as
	// CurCard > c" with k = c+1).
	CardAtLeast = sim.CardAtLeast
	// CardChanged fires when CurCard moves off its value at arming time.
	CardChanged = sim.CardChanged
	// LocalRoundReached fires when the agent's local round counter hits r.
	LocalRoundReached = sim.LocalRoundReached
	// Any fires when any sub-condition fires.
	Any = sim.Any
	// NewRunner builds a scenario runner with shared defaults.
	NewRunner = sim.NewRunner
	// RunBatch executes independent scenarios on a worker pool, results in
	// input order.
	RunBatch = sim.RunBatch
	// RunStream executes independent scenarios on a worker pool, streaming
	// results in input order without materializing the result slice.
	RunStream = sim.RunStream
	// ValidateScenario checks a scenario up front (labels, starts, wake
	// rounds, programs) and returns a descriptive error; Run and spec
	// compilation apply the same checks.
	ValidateScenario = sim.Validate
	// WithMaxRounds sets a Runner's default round budget.
	WithMaxRounds = sim.WithMaxRounds
	// WithOnRound sets a Runner's default per-round hook (forces per-round
	// stepping).
	WithOnRound = sim.WithOnRound
	// WithParallelism sets how many scenarios a Runner executes concurrently.
	WithParallelism = sim.WithParallelism
)

// NewGraphBuilder starts building a custom port-labeled graph with n nodes.
func NewGraphBuilder(name string, n int) *GraphBuilder { return graph.NewBuilder(name, n) }

// Graph generators.
var (
	// Ring returns the n-cycle (n >= 3).
	Ring = graph.Ring
	// Path returns the n-node path (n >= 2).
	Path = graph.Path
	// Complete returns K_n (n >= 2).
	Complete = graph.Complete
	// Star returns a center with n-1 leaves (n >= 2).
	Star = graph.Star
	// Grid returns the r x c grid.
	Grid = graph.Grid
	// Torus returns the r x c torus (r, c >= 3).
	Torus = graph.Torus
	// Hypercube returns the d-dimensional hypercube.
	Hypercube = graph.Hypercube
	// RandomTree returns a seeded random tree on n nodes.
	RandomTree = graph.RandomTree
	// GNP returns a seeded connected Erdős–Rényi graph.
	GNP = graph.GNP
	// Barbell returns two k-cliques joined by a path.
	Barbell = graph.Barbell
	// Lollipop returns a k-clique with a tail path.
	Lollipop = graph.Lollipop
	// TwoNodes returns the smallest legal network: one edge.
	TwoNodes = graph.TwoNodes
)

// BuildSequence constructs the run's universal exploration sequence for g:
// the shared public knowledge that operationalizes "all agents know an upper
// bound N on the size" (DESIGN.md, substitution 1).
func BuildSequence(g *Graph) *Sequence { return ues.Build(g) }

// GatherKnownUpperBound returns the agent program for the paper's
// Algorithm 3: gathering with simultaneous declaration plus leader election,
// given a known upper bound on the network size (Theorem 3.1). All agents of
// a run must share the same Sequence.
func GatherKnownUpperBound(seq *Sequence) Program { return gather.NewProgram(seq) }

// GossipKnownUpperBound returns the agent program for the paper's
// Section 5: gather, then make every agent's binary message known to all
// agents with multiplicities (Theorem 5.1). Each agent passes its own
// message.
func GossipKnownUpperBound(seq *Sequence, message string) Program {
	return gossip.NewProgram(seq, message)
}

// GatherUnknownUpperBound returns the agent program for the paper's
// Algorithm 5: gathering, leader election and size discovery with NO
// a-priori knowledge about the network (Theorem 4.1), under the scaled
// duration profile p (use DefaultUnknownParams for graphs of at most three
// nodes; the paper's unscaled constants are astronomically large by design —
// see unknown.PaperDims).
func GatherUnknownUpperBound(p UnknownParams) Program { return unknown.NewProgram(p) }

// DefaultUnknownParams returns the scaled profile valid for true graphs
// with at most 3 nodes and diameter at most 2.
func DefaultUnknownParams() UnknownParams { return unknown.DefaultParams() }

// NewUnknownSchedule returns the deterministic hypothesis schedule all
// agents of an unknown-bound run share.
func NewUnknownSchedule(p UnknownParams) *UnknownSchedule { return unknown.NewSchedule(p) }

// UnknownScenarioFor builds the agent specs matching a configuration of Ω:
// one GatherUnknownUpperBound agent per labeled node.
func UnknownScenarioFor(cfg *Configuration, p UnknownParams) []AgentSpec {
	return unknown.ScenarioFor(cfg, p)
}

// PaperUnknownDims reports the paper's exact (astronomical) duration
// constants for hypothesis h with parameters n_h and m_h, as documented in
// DESIGN.md substitution 4.
func PaperUnknownDims(h, nh, mh int) unknown.PaperDimsResult {
	return unknown.PaperDims(h, nh, mh)
}

// Communicate exposes the paper's Algorithm 4 — the movement-encoded
// broadcast primitive — for building custom chatter-free protocols on top.
// All co-located agents must call it in the same round with the same i; s
// must be a codeword produced by Encode. See internal/gather for the
// delivery guarantees (Lemma 3.1).
func Communicate(a *API, tm Timing, i int, s string, participate bool) (l string, k int) {
	return gather.Communicate(a, tm, i, s, participate)
}

// NewTiming derives the public duration constants from a sequence.
func NewTiming(seq *Sequence) Timing { return Timing{Seq: seq} }

// BaselineGather runs the traditional-model (talking) baseline on the same
// scenario shape, for overhead comparisons (experiment E6).
func BaselineGather(g *Graph, seq *Sequence, specs []BaselineSpec) (BaselineResult, error) {
	return baseline.Gather(g, seq, specs)
}

// RandomizedRendezvous returns the two-agent randomized gathering program
// exploring the paper's Section-6 open problem: a lazy random walk with
// CurCard detection, no knowledge required, polynomial expected meeting
// time (experiment E11). See internal/randomized for scope and limits.
func RandomizedRendezvous(scenarioSeed uint64, maxRounds int) Program {
	return randomized.RendezvousProgram(scenarioSeed, maxRounds)
}
