// Public-API tests: everything a downstream user touches goes through the
// root package, so these tests double as compile-time checks that the API
// surface stays complete.
package nochatter_test

import (
	"testing"

	"nochatter"
)

func TestPublicGatherAndLeader(t *testing.T) {
	g := nochatter.Ring(6)
	seq := nochatter.BuildSequence(g)
	res, err := nochatter.Run(nochatter.Scenario{
		Graph: g,
		Agents: []nochatter.AgentSpec{
			{Label: 4, Start: 0, WakeRound: 0, Program: nochatter.GatherKnownUpperBound(seq)},
			{Label: 9, Start: 3, WakeRound: nochatter.DormantUntilVisited, Program: nochatter.GatherKnownUpperBound(seq)},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllHaltedTogether() {
		t.Fatal("not gathered")
	}
	if l := res.Leaders(); len(l) != 1 || (l[0] != 4 && l[0] != 9) {
		t.Fatalf("leaders = %v", l)
	}
}

func TestPublicGossip(t *testing.T) {
	g := nochatter.Path(4)
	seq := nochatter.BuildSequence(g)
	res, err := nochatter.Run(nochatter.Scenario{
		Graph: g,
		Agents: []nochatter.AgentSpec{
			{Label: 1, Start: 0, WakeRound: 0, Program: nochatter.GossipKnownUpperBound(seq, "10")},
			{Label: 2, Start: 3, WakeRound: 0, Program: nochatter.GossipKnownUpperBound(seq, "0")},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range res.Agents {
		if a.Report.Gossip["10"] != 1 || a.Report.Gossip["0"] != 1 {
			t.Fatalf("agent %d gossip %v", a.Label, a.Report.Gossip)
		}
	}
}

func TestPublicUnknownBound(t *testing.T) {
	p := nochatter.DefaultUnknownParams()
	sched := nochatter.NewUnknownSchedule(p)
	cfg := sched.Config(1)
	res, err := nochatter.Run(nochatter.Scenario{
		Graph:  cfg.G,
		Agents: nochatter.UnknownScenarioFor(cfg, p),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllHaltedTogether() {
		t.Fatal("not gathered")
	}
	if res.Agents[0].Report.Size != cfg.N() {
		t.Fatalf("size = %d, want %d", res.Agents[0].Report.Size, cfg.N())
	}
}

func TestPublicCommunicate(t *testing.T) {
	// Build a tiny custom protocol on the exposed primitive: two co-located
	// agents exchange fixed codewords.
	g := nochatter.TwoNodes()
	seq := nochatter.BuildSequence(g)
	tm := nochatter.NewTiming(seq)
	got := map[int]string{}
	prog := func(code string) nochatter.Program {
		return func(a *nochatter.API) nochatter.Report {
			if a.Label() == 2 {
				a.TakePort(0)
			} else {
				a.Wait()
			}
			l, _ := nochatter.Communicate(a, tm, 6, code, true)
			got[a.Label()] = l
			return nochatter.Report{}
		}
	}
	_, err := nochatter.Run(nochatter.Scenario{
		Graph: g,
		Agents: []nochatter.AgentSpec{
			{Label: 1, Start: 0, WakeRound: 0, Program: prog("110001")},
			{Label: 2, Start: 1, WakeRound: 0, Program: prog("1101")},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for label, l := range got {
		if l != "110001" { // lexicographically smaller than "1101" at position 4
			t.Errorf("agent %d learned %q", label, l)
		}
	}
}

func TestPublicBaseline(t *testing.T) {
	g := nochatter.Ring(5)
	seq := nochatter.BuildSequence(g)
	res, err := nochatter.BaselineGather(g, seq, []nochatter.BaselineSpec{
		{Label: 3, Start: 0}, {Label: 8, Start: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Leader != 3 || res.Rounds <= 0 {
		t.Fatalf("baseline result %+v", res)
	}
}

func TestPublicGraphBuilder(t *testing.T) {
	g, err := nochatter.NewGraphBuilder("custom", 3).
		AddEdge(0, 1, 0, 0).
		AddEdge(1, 2, 1, 0).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 || g.Diameter() != 2 {
		t.Fatalf("custom graph wrong: n=%d diam=%d", g.N(), g.Diameter())
	}
}

func TestPublicGenerators(t *testing.T) {
	gens := []*nochatter.Graph{
		nochatter.Ring(4), nochatter.Path(3), nochatter.Complete(4),
		nochatter.Star(4), nochatter.Grid(2, 2), nochatter.Torus(3, 3),
		nochatter.Hypercube(2), nochatter.RandomTree(5, 1),
		nochatter.GNP(5, 0.5, 1), nochatter.Barbell(3, 1),
		nochatter.Lollipop(3, 1), nochatter.TwoNodes(),
	}
	for _, g := range gens {
		if g.N() < 2 {
			t.Errorf("%s too small", g.Name())
		}
	}
}

func TestPaperUnknownDims(t *testing.T) {
	d := nochatter.PaperUnknownDims(2, 3, 3)
	if d.BallRadius.Int64() != 4*2*243 {
		t.Errorf("ball radius %v", d.BallRadius)
	}
}

func TestPublicConditionsAndBatch(t *testing.T) {
	// The declarative condition API and the batch runner through the façade:
	// a sweep of watcher/walker scenarios, each watcher waiting on
	// CardAtLeast engine-side.
	sizes := []int{3, 4, 5}
	scs := make([]nochatter.Scenario, len(sizes))
	for i, n := range sizes {
		n := n
		watcher := func(a *nochatter.API) nochatter.Report {
			a.WaitUntil(nochatter.Any(nochatter.CardAtLeast(2), nochatter.LocalRoundReached(1000)))
			return nochatter.Report{Leader: a.LocalRound()}
		}
		walker := func(a *nochatter.API) nochatter.Report {
			for j := 0; j < n-1; j++ {
				a.TakePort(0)
			}
			a.Wait()
			return nochatter.Report{}
		}
		scs[i] = nochatter.Scenario{
			Graph: nochatter.Path(n),
			Agents: []nochatter.AgentSpec{
				{Label: 1, Start: 0, WakeRound: 0, Program: watcher},
				{Label: 2, Start: n - 1, WakeRound: 0, Program: walker},
			},
		}
	}
	for i, br := range nochatter.RunBatch(scs, nochatter.WithParallelism(2)) {
		if br.Err != nil {
			t.Fatalf("case %d: %v", i, br.Err)
		}
		// The walker needs n-1 moves to reach node 0; the watcher must
		// resume exactly then.
		if got, want := br.Result.Agents[0].Report.Leader, sizes[i]-1; got != want {
			t.Errorf("case %d: watcher resumed at local round %d, want %d", i, got, want)
		}
	}
}

func TestPublicScenarioSpec(t *testing.T) {
	// The spec form of the Quick start: scenario as data, through JSON and
	// back, compiled via the registries and bit-identical to the closure
	// form.
	sp := nochatter.ScenarioSpec{
		Graph: nochatter.GraphSpec{Family: "ring", N: 6},
		Agents: []nochatter.SpecAgent{
			{Label: 4, Start: 0, Algorithm: nochatter.KnownAlgorithm()},
			{Label: 9, Start: 3, Wake: nochatter.DormantUntilVisited, Algorithm: nochatter.KnownAlgorithm()},
		},
	}
	buf, err := sp.MarshalIndentJSON()
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := nochatter.ParseSpec(buf)
	if err != nil {
		t.Fatal(err)
	}
	res, err := parsed.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllHaltedTogether() {
		t.Fatal("spec run did not gather")
	}

	g := nochatter.Ring(6)
	seq := nochatter.BuildSequence(g)
	hand, err := nochatter.Run(nochatter.Scenario{
		Graph: g,
		Agents: []nochatter.AgentSpec{
			{Label: 4, Start: 0, WakeRound: 0, Program: nochatter.GatherKnownUpperBound(seq)},
			{Label: 9, Start: 3, WakeRound: nochatter.DormantUntilVisited, Program: nochatter.GatherKnownUpperBound(seq)},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != hand.Rounds || res.Agents[0].FinalNode != hand.Agents[0].FinalNode {
		t.Errorf("spec run (round %d, node %d) diverges from closure run (round %d, node %d)",
			res.Rounds, res.Agents[0].FinalNode, hand.Rounds, hand.Agents[0].FinalNode)
	}
}

func TestPublicSweepStream(t *testing.T) {
	specs, err := nochatter.NewSweep().
		Families("ring").Sizes(4, 6).
		Teams(nochatter.SweepTeam{Labels: []int{1, 2}}).
		Name("pub-{n}").
		Specs()
	if err != nil {
		t.Fatal(err)
	}
	scs, err := nochatter.CompileSpecs(specs)
	if err != nil {
		t.Fatal(err)
	}
	next := 0
	nochatter.RunStream(scs, func(br nochatter.BatchResult) bool {
		if br.Index != next {
			t.Errorf("stream delivered index %d, want %d", br.Index, next)
		}
		next++
		if br.Err != nil {
			t.Errorf("%s: %v", specs[br.Index].Name, br.Err)
		}
		return true
	}, nochatter.WithParallelism(2))
	if next != len(scs) {
		t.Errorf("streamed %d results, want %d", next, len(scs))
	}
}

func TestPublicRunUntil(t *testing.T) {
	g := nochatter.TwoNodes()
	prog := func(a *nochatter.API) nochatter.Report {
		hit := a.RunUntil(nochatter.LocalRoundReached(7), func(a *nochatter.API) {
			a.WaitRounds(1_000_000)
		})
		if !hit {
			t.Error("want interruption at local round 7")
		}
		return nochatter.Report{}
	}
	res, err := nochatter.Run(nochatter.Scenario{
		Graph:  g,
		Agents: []nochatter.AgentSpec{{Label: 1, Start: 0, WakeRound: 0, Program: prog}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Agents[0].HaltRound != 7 {
		t.Errorf("halted at %d, want 7", res.Agents[0].HaltRound)
	}
}
