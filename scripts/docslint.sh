#!/usr/bin/env bash
# docslint.sh — the docs gate CI runs: a package-comment check over every
# package in the module, and the output-verified examples. Formatting, vet
# and the determinism lint suite live in scripts/lint.sh so each check runs
# exactly once per CI pass.
#
# Fails if:
#   - any package (including examples and cmds) lacks a doc comment
#     immediately above its package clause
#   - any runnable Example's // Output block does not match
#
# Run from the repository root: ./scripts/docslint.sh
set -euo pipefail

fail=0

# Every package must have a doc comment: a comment block ending on the line
# directly above the package clause of at least one file.
for dir in $(go list -f '{{.Dir}}' ./...); do
  has_doc=0
  for f in "$dir"/*.go; do
    [ -e "$f" ] || continue
    case "$f" in *_test.go) continue ;; esac
    # The line preceding the package clause must be a comment line.
    if awk '
      /^package / { if (prev ~ /^\/\// || prev ~ /^\*\//) found = 1; exit }
      { prev = $0 }
      END { exit found ? 0 : 1 }
    ' "$f"; then
      has_doc=1
      break
    fi
  done
  if [ "$has_doc" -eq 0 ]; then
    echo "docslint: package in $dir has no package doc comment" >&2
    fail=1
  fi
done

# Examples are documentation: they must run and their outputs must match.
go test -run Example ./...

exit $fail
