#!/usr/bin/env bash
# lint.sh — the code gate CI runs: formatting, vet, and the repo's own
# determinism lint suite (cmd/gatherlint; DESIGN.md §11).
#
# Fails if:
#   - any file is not gofmt-formatted (testdata fixtures included)
#   - go vet reports anything
#   - gatherlint reports any determinism-invariant finding that is not
#     covered by a justified //lint:allow annotation
#
# Run from the repository root: ./scripts/lint.sh
set -euo pipefail

fail=0

unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
  echo "gofmt: these files need formatting:" >&2
  echo "$unformatted" >&2
  fail=1
else
  echo "lint: gofmt clean"
fi

if go vet ./...; then
  echo "lint: go vet clean"
else
  fail=1
fi

# gatherlint: the findings stream to gatherlint.json (one JSON object per
# line — CI uploads it as an artifact) while the human rendering and the
# per-analyzer wall times go to stderr.
if go run ./cmd/gatherlint -json -stats ./... > gatherlint.json; then
  echo "lint: gatherlint clean (detrand, maporder, wiretags, lockscope, purity, errsink, atomic)"
else
  fail=1
fi

exit $fail
